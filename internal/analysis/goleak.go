package analysis

// goleak: every goroutine launched in the concurrency-bearing packages must
// have a visible termination contract. The daemon and the collection engine
// both run long enough that a leaked goroutine is not hygiene, it is a slow
// memory and accounting bug: a worker that outlives its pool keeps a Lab
// shard pinned, and a sampler that outlives its run skews the next run's
// energy totals.
//
// A go statement passes when any of these holds:
//
//   - counter join: the goroutine calls X.Done() (WaitGroup or errgroup
//     style) and X.Wait() is reachable on every CFG path from the launch to
//     the function's exit — or X is a struct field and some function of the
//     same package waits on that field (the pool pattern: workers start in
//     Run, join in Close);
//   - channel join: the goroutine sends on or closes a channel that the
//     launching function receives from (or ranges over) on every path;
//   - bounded handoff: the goroutine is loop-free and sends on a locally
//     made buffered channel (cap >= 1 constant) — it cannot block forever,
//     whether or not anyone listens (the errCh-under-select pattern);
//   - context bound: the goroutine's own body receives from a Done()
//     channel, tying its lifetime to a context.
//
// Everything else is reported. The check resolves `go f(...)` through the
// module function index, mapping the callee's Done/send evidence back to
// caller arguments where the arguments are simple expressions; evidence it
// cannot map (a send on a channel threaded through a struct) counts as
// "consumer lives elsewhere" and stays silent — the check errs toward
// missing a leak over inventing one.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"mcdvfs/internal/analysis/flow"
)

var goleakPkgs = map[string]bool{
	"mcdvfs/internal/serve":       true,
	"mcdvfs/internal/experiments": true,
	"mcdvfs/internal/trace":       true,
}

// GoLeakAnalyzer builds the goleak check.
func GoLeakAnalyzer() *Analyzer {
	return &Analyzer{
		Name:    "goleak",
		Doc:     "goroutines in the long-running packages must be joined: WaitGroup counter, channel handoff, or context bound",
		Applies: func(path string) bool { return goleakPkgs[path] },
		Run:     runGoLeak,
	}
}

func runGoLeak(pass *Pass) {
	if !pass.IncludeSrc {
		return
	}
	g := &goleakChecker{pass: pass}
	for _, f := range pass.Pkg.Syntax {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				g.checkFunc(fd)
			}
		}
	}
}

type goleakChecker struct {
	pass *Pass
}

// checkFunc examines every go statement launched directly by fn, then
// recurses into nested literals (a goroutine launched inside a closure joins
// against the closure's own control flow, not the enclosing function's).
func (g *goleakChecker) checkFunc(fn ast.Node) {
	body := flow.FuncBody(fn)
	var gos []*ast.GoStmt
	var nested []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			nested = append(nested, n)
			return false
		case *ast.GoStmt:
			gos = append(gos, n)
		}
		return true
	})
	if len(gos) > 0 {
		cfg := flow.New(fn)
		for _, goStmt := range gos {
			g.checkGo(fn, cfg, goStmt)
		}
	}
	for _, lit := range nested {
		g.checkFunc(lit)
	}
	// The launched literals themselves may launch goroutines too.
	for _, goStmt := range gos {
		if lit, ok := goStmt.Call.Fun.(*ast.FuncLit); ok {
			g.checkFunc(lit)
		}
	}
}

// goEvidence is what a goroutine body offers as termination contract,
// translated into the launcher's frame of reference.
type goEvidence struct {
	ctxBound  bool
	doneRecvs []ast.Expr // X of X.Done() calls, launcher frame
	sentChans []ast.Expr // channels sent to or closed, launcher frame
	loopSend  bool       // some send sits inside a loop
	external  bool       // evidence exists but cannot be mapped to the launcher
}

func (g *goleakChecker) checkGo(fn ast.Node, cfg *flow.CFG, goStmt *ast.GoStmt) {
	ev, resolved := g.gatherEvidence(goStmt)
	if !resolved {
		g.pass.Reportf(goStmt.Pos(), "goroutine target is dynamic and cannot be analyzed; join it visibly or waive with a reason")
		return
	}
	if ev.ctxBound {
		return
	}
	for _, wg := range ev.doneRecvs {
		if g.counterJoined(fn, cfg, goStmt, wg) {
			return
		}
	}
	for _, ch := range ev.sentChans {
		if g.chanJoined(fn, cfg, goStmt, ch, ev.loopSend) {
			return
		}
	}
	if ev.external {
		return
	}
	if len(ev.doneRecvs) == 0 && len(ev.sentChans) == 0 {
		g.pass.Reportf(goStmt.Pos(), "goroutine is fire-and-forget: no WaitGroup Done, channel send/close, or ctx-done receive in its body")
		return
	}
	g.pass.Reportf(goStmt.Pos(), "goroutine's completion signal is not consumed on every path from here to return (Wait or receive can be skipped)")
}

// gatherEvidence inspects the goroutine's body. For a function literal the
// evidence expressions are already in the launcher's frame (captured
// variables). For a statically resolved callee, parameter- and receiver-
// rooted evidence maps through the call's arguments; anything rooted deeper
// is marked external. resolved=false means the body is invisible (dynamic
// call or out-of-module).
func (g *goleakChecker) gatherEvidence(goStmt *ast.GoStmt) (goEvidence, bool) {
	info := g.pass.Pkg.Info
	if lit, ok := goStmt.Call.Fun.(*ast.FuncLit); ok {
		ev := collectBodyEvidence(lit.Body, nil)
		return ev, true
	}
	callee := g.pass.Prog.Callee(info, goStmt.Call)
	if callee == nil {
		return goEvidence{}, false
	}
	// Map the callee's parameter names (and method receiver) to the
	// launcher-frame argument expressions.
	rename := map[string]ast.Expr{}
	if callee.Decl.Recv != nil && len(callee.Decl.Recv.List) > 0 && len(callee.Decl.Recv.List[0].Names) > 0 {
		if sel, ok := ast.Unparen(goStmt.Call.Fun).(*ast.SelectorExpr); ok {
			rename[callee.Decl.Recv.List[0].Names[0].Name] = sel.X
		}
	}
	i := 0
	if callee.Decl.Type.Params != nil {
		for _, f := range callee.Decl.Type.Params.List {
			for _, name := range f.Names {
				if i < len(goStmt.Call.Args) {
					rename[name.Name] = goStmt.Call.Args[i]
				}
				i++
			}
		}
	}
	ev := collectBodyEvidence(callee.Decl.Body, rename)
	return ev, true
}

// collectBodyEvidence walks a goroutine body. rename maps the body's root
// identifiers into the launcher's frame (nil for literals, which share it).
func collectBodyEvidence(body *ast.BlockStmt, rename map[string]ast.Expr) goEvidence {
	var ev goEvidence
	loopDepth := 0
	// translate rewrites an evidence expression into the launcher's frame,
	// or reports it unmappable.
	translate := func(e ast.Expr) (ast.Expr, bool) {
		if rename == nil {
			return e, true
		}
		if id, ok := e.(*ast.Ident); ok {
			if mapped, ok := rename[id.Name]; ok {
				return mapped, true
			}
			return nil, false
		}
		// Selector roots (p.wg where p is the receiver) stay field evidence;
		// the field-waiter fallback keys on the final field name, which
		// translation preserves, so pass the expression through.
		return e, true
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
			ast.Inspect(n, func(m ast.Node) bool {
				if m == n {
					return true
				}
				return walk(m)
			})
			loopDepth--
			return false
		case *ast.SendStmt:
			if ch, ok := translate(n.Chan); ok {
				ev.sentChans = append(ev.sentChans, ch)
				if loopDepth > 0 {
					ev.loopSend = true
				}
			} else {
				ev.external = true
			}
		case *ast.UnaryExpr:
			// <-X.Done() — a context-shaped bound, whatever X is.
			if n.Op == token.ARROW {
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && len(call.Args) == 0 {
						ev.ctxBound = true
					}
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && len(n.Args) == 0 {
				if x, ok := translate(sel.X); ok {
					ev.doneRecvs = append(ev.doneRecvs, x)
				} else {
					ev.external = true
				}
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if ch, ok := translate(n.Args[0]); ok {
					ev.sentChans = append(ev.sentChans, ch)
				} else {
					ev.external = true
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return ev
}

// counterJoined reports whether the WaitGroup-like wg has a Wait on every
// path from the launch, or — for struct fields — a waiter anywhere in the
// declaring package.
func (g *goleakChecker) counterJoined(fn ast.Node, cfg *flow.CFG, goStmt *ast.GoStmt, wg ast.Expr) bool {
	// `go worker(&wg)` maps the callee's wg.Done() evidence to &wg; the
	// launcher joins on the unadorned variable.
	if ue, ok := ast.Unparen(wg).(*ast.UnaryExpr); ok && ue.Op == token.AND {
		wg = ue.X
	}
	want := render(wg) + ".Wait"
	ok := func(n ast.Node) bool { return nodeHasCallRendered(n, want) }
	if flow.EveryPathHits(cfg, goStmt, ok, nil) {
		return true
	}
	// Field fallback: the pool pattern joins in another method. Accept a
	// Wait on the same final field name anywhere in this package.
	if sel, isField := wg.(*ast.SelectorExpr); isField {
		suffix := "." + sel.Sel.Name + ".Wait"
		for _, f := range g.pass.Prog.Funcs() {
			if f.Pkg.Types != g.pass.Pkg.Types {
				continue
			}
			found := false
			ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if strings.HasSuffix(render(call.Fun), suffix) {
						found = true
					}
				}
				return !found
			})
			if found {
				return true
			}
		}
	}
	return false
}

// chanJoined reports whether a goroutine's send on ch is consumed: an
// every-path receive/range in the launcher, a bounded local buffer, or a
// channel whose consumer provably lives outside this function.
func (g *goleakChecker) chanJoined(fn ast.Node, cfg *flow.CFG, goStmt *ast.GoStmt, ch ast.Expr, loopSend bool) bool {
	want := render(ch)
	recv := func(n ast.Node) bool { return nodeReceivesFrom(n, want) }
	if flow.EveryPathHits(cfg, goStmt, recv, nil) {
		return true
	}
	if !loopSend && g.locallyBuffered(fn, ch) {
		return true
	}
	// A channel that is not a local of this function (parameter, field,
	// package var) has its consumer elsewhere; the launcher is not the one
	// leaking it.
	if !g.isFunctionLocal(fn, ch) {
		return true
	}
	return false
}

// locallyBuffered reports whether ch is defined in fn as make(chan T, n)
// with constant n >= 1.
func (g *goleakChecker) locallyBuffered(fn ast.Node, ch ast.Expr) bool {
	id, ok := ch.(*ast.Ident)
	if !ok {
		return false
	}
	info := g.pass.Pkg.Info
	v, _ := info.Uses[id].(*types.Var)
	if v == nil {
		v, _ = info.Defs[id].(*types.Var)
	}
	if v == nil {
		return false
	}
	buffered := false
	ast.Inspect(flow.FuncBody(fn), func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			lv, _ := info.Defs[lid].(*types.Var)
			if lv == nil {
				lv, _ = info.Uses[lid].(*types.Var)
			}
			if lv != v {
				continue
			}
			call, ok := as.Rhs[i].(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				continue
			}
			if fid, ok := call.Fun.(*ast.Ident); !ok || fid.Name != "make" {
				continue
			}
			if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil {
				if n, ok := constant.Int64Val(tv.Value); ok && n >= 1 {
					buffered = true
				}
			}
		}
		return true
	})
	return buffered
}

// isFunctionLocal reports whether ch resolves to a variable declared inside
// fn's body (as opposed to a parameter — whose consumer is the caller's
// business — a captured outer local, a field, or a package var).
func (g *goleakChecker) isFunctionLocal(fn ast.Node, ch ast.Expr) bool {
	id, ok := ch.(*ast.Ident)
	if !ok {
		return false
	}
	info := g.pass.Pkg.Info
	v, _ := info.Uses[id].(*types.Var)
	if v == nil {
		v, _ = info.Defs[id].(*types.Var)
	}
	if v == nil || v.IsField() {
		return false
	}
	body := flow.FuncBody(fn)
	return body.Pos() <= v.Pos() && v.Pos() <= body.End()
}

// nodeHasCallRendered reports whether n contains a call whose function
// renders exactly to want ("p.wg.Wait").
func nodeHasCallRendered(n ast.Node, want string) bool {
	found := false
	ast.Inspect(flow.HeaderExpr(n), func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok && render(call.Fun) == want {
			found = true
		}
		return !found
	})
	return found
}

// nodeReceivesFrom reports whether n receives from or ranges over the
// channel rendering to want.
func nodeReceivesFrom(n ast.Node, want string) bool {
	if r, ok := n.(*ast.RangeStmt); ok && render(r.X) == want {
		return true
	}
	found := false
	ast.Inspect(flow.HeaderExpr(n), func(m ast.Node) bool {
		if u, ok := m.(*ast.UnaryExpr); ok && u.Op == token.ARROW && render(u.X) == want {
			found = true
		}
		return !found
	})
	return found
}
