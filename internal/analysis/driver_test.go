package analysis_test

// Golden-file tests: each fixture package under testdata/src holds positive
// hits, suppressed hits, and clean near-misses for one check; the golden
// file pins the exact diagnostics (file:line:col, check, message) the suite
// must produce. Regenerate with:
//
//	go test ./internal/analysis -run TestFixtureGolden -update

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcdvfs/internal/analysis"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// fixtures lists every fixture package and the check it exercises.
var fixtures = []string{"determfix", "unitfix", "floatfix", "ctxfix", "lockfix", "lintfix",
	"goleakfix", "lockorderfix", "errflowfix", "rangefix", "nilflowfix", "hotpathfix", "ownedfix",
	"guardedfix", "atomicfix", "spawnfix", "contractfix"}

// runFixture executes the whole suite, scope-free, over one fixture.
func runFixture(t *testing.T, name string, disable map[string]bool) string {
	t.Helper()
	diags, err := analysis.Run(analysis.Options{
		Patterns: []string{"./testdata/src/" + name},
		Disable:  disable,
		ScopeAll: true,
	})
	if err != nil {
		t.Fatalf("Run(%s): %v", name, err)
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	analysis.RelTo(diags, wd)
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func TestFixtureGolden(t *testing.T) {
	for _, name := range fixtures {
		t.Run(name, func(t *testing.T) {
			got := runFixture(t, name, nil)
			golden := filepath.Join("testdata", "golden", name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics differ from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestFixturesHaveHitsAndSuppressions guards the fixtures themselves: every
// golden file must show at least one positive hit, and every fixture with a
// Waived case must prove the waiver actually suppressed (the waived line
// never appears).
func TestFixturesHaveHitsAndSuppressions(t *testing.T) {
	for _, name := range fixtures {
		got := runFixture(t, name, nil)
		if got == "" {
			t.Errorf("%s: fixture produced no diagnostics; positive cases are broken", name)
		}
		if strings.Contains(got, "Waived") {
			t.Errorf("%s: a //lint:allow waiver failed to suppress:\n%s", name, got)
		}
	}
}

func TestDisableSkipsCheck(t *testing.T) {
	got := runFixture(t, "floatfix", map[string]bool{"floateq": true})
	if strings.Contains(got, "[floateq]") {
		t.Errorf("disabled check still reported:\n%s", got)
	}
}

// BenchmarkVet measures the full-repository suite run — load, type-check,
// flow construction, every check — serial against the default worker pool.
// The parallel/serial ratio is the headline number for the driver's bounded
// worker pool; output determinism across the two is covered by the golden
// tests, which run through the same bucketed collection path.
func BenchmarkVet(b *testing.B) {
	cases := []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0}, // 0 = GOMAXPROCS
	}
	// Warm the process-wide stdlib importer so both variants measure the
	// module-level work the worker pool actually parallelizes, not the
	// one-time stdlib type-check.
	if _, err := analysis.Run(analysis.Options{
		Dir: filepath.Join("..", ".."), Patterns: []string{"./..."},
	}); err != nil {
		b.Fatal(err)
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				diags, err := analysis.Run(analysis.Options{
					Dir:      filepath.Join("..", ".."),
					Patterns: []string{"./..."},
					Workers:  bc.workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(diags) != 0 {
					b.Fatalf("repo not clean under benchmark: %v", diags[0])
				}
			}
		})
	}
}

// BenchmarkAbsint isolates the abstract-interpretation tier: only the
// checks that run the interval/nil-ness fixpoints (rangecheck, nilflow)
// and the purity-summary determinism check stay enabled, so the number
// tracks the cost of the absint engine itself — Prepare's interprocedural
// summary rounds plus the per-function analyses — over the whole module.
func BenchmarkAbsint(b *testing.B) {
	disable := map[string]bool{}
	for _, a := range analysis.Suite() {
		switch a.Name {
		case "rangecheck", "nilflow", "determinism":
		default:
			disable[a.Name] = true
		}
	}
	cases := []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0}, // 0 = GOMAXPROCS
	}
	if _, err := analysis.Run(analysis.Options{
		Dir: filepath.Join("..", ".."), Patterns: []string{"./..."},
	}); err != nil {
		b.Fatal(err)
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				diags, err := analysis.Run(analysis.Options{
					Dir:      filepath.Join("..", ".."),
					Patterns: []string{"./..."},
					Disable:  disable,
					Workers:  bc.workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(diags) != 0 {
					b.Fatalf("repo not clean under benchmark: %v", diags[0])
				}
			}
		})
	}
}

// TestWorkersDeterministicJSON pins the scheduler-independence contract
// end to end: the JSON rendering of the full diagnostic set — the same
// bytes mcdvfsvet -json emits — is identical no matter how many workers
// ran the passes, including the Prepare-computed interprocedural state the
// abstract-interpretation checks read concurrently.
func TestWorkersDeterministicJSON(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	runJSON := func(workers int) []byte {
		diags, err := analysis.Run(analysis.Options{
			Patterns: []string{
				"./testdata/src/rangefix", "./testdata/src/nilflowfix",
				"./testdata/src/determfix", "./testdata/src/goleakfix",
				"./testdata/src/contractfix",
			},
			ScopeAll: true,
			Workers:  workers,
		})
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		analysis.RelTo(diags, wd)
		b, err := json.Marshal(diags)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := runJSON(1)
	if !strings.Contains(string(serial), "rangecheck") || !strings.Contains(string(serial), "nilflow") {
		t.Fatalf("serial run missing expected findings:\n%s", serial)
	}
	for _, w := range []int{2, 8} {
		if got := runJSON(w); !bytes.Equal(serial, got) {
			t.Errorf("workers=%d output differs from serial\n--- serial ---\n%s\n--- workers=%d ---\n%s",
				w, serial, w, got)
		}
	}
}

// TestWaiversSortedInventory pins the -waivers inventory order: file, then
// line, then check — the contract consumers diffing two inventories rely
// on.
func TestWaiversSortedInventory(t *testing.T) {
	ws, err := analysis.ListWaivers(analysis.Options{
		Dir:      filepath.Join("..", ".."),
		Patterns: []string{"./..."},
	})
	if err != nil {
		t.Fatalf("ListWaivers: %v", err)
	}
	if len(ws) < 2 {
		t.Fatalf("repo has %d waivers; the ordering test needs at least 2", len(ws))
	}
	for i := 1; i < len(ws); i++ {
		a, b := ws[i-1], ws[i]
		if a.File > b.File ||
			(a.File == b.File && a.Line > b.Line) ||
			(a.File == b.File && a.Line == b.Line && a.Check > b.Check) {
			t.Errorf("waivers out of order at %d: %s:%d [%s] before %s:%d [%s]",
				i, a.File, a.Line, a.Check, b.File, b.Line, b.Check)
		}
	}
}

// TestRepoCleanAtHead is the smoke test the Makefile's lint tier promises:
// the suite exits clean on the repository as committed. Every intentional
// exactness or scoping decision must carry its waiver; a failure here is
// either a real regression or a missing reason.
func TestRepoCleanAtHead(t *testing.T) {
	diags, err := analysis.Run(analysis.Options{
		Dir:      filepath.Join("..", ".."),
		Patterns: []string{"./..."},
	})
	if err != nil {
		t.Fatalf("Run(./...): %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
