package analysis

// The hotpath check: functions annotated //vet:hotpath — and everything they
// transitively call through static calls — must be provably allocation-free.
//
// PR 6 made internal/sim.Runner a zero-alloc columnar engine, but that
// invariant was only guarded dynamically, by one benchmark's allocs/op gate
// on one function. This check moves the guard to lint time: a stray
// interface boxing, escaping composite literal, or unbounded append anywhere
// in the solve chain is reported file-and-line precise before a benchmark
// ever runs.
//
// The analysis is deliberately a prover, not a profiler: anything it cannot
// prove allocation-free (a call through an interface or function value, a
// call into a stdlib package outside the small allowlist) is a finding. The
// escape hatch is the ordinary //lint:allow hotpath waiver with a reason —
// the triage discipline every other check in the suite uses.
//
// Cold paths are exempt: a node is cold when it sits inside a return
// statement whose error result is non-nil, inside a panic argument, or when
// every control-flow path from it reaches such an exit before any normal
// return. Error construction (fmt.Errorf and its boxing) on guard-failure
// paths therefore stays silent — those paths run zero times per grid cell.
//
// Appends use the absint interval domain's length/capacity facts: an append
// is silent only when len(base) + k <= cap(base) is provable at the call
// site (the arena discipline — preallocate in the constructor, refill in the
// hot loop).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"math"
	"strings"

	"mcdvfs/internal/analysis/absint"
	"mcdvfs/internal/analysis/flow"
)

// hotMark is the annotation that roots the analysis at a function.
const hotMark = "//vet:hotpath"

// HotPathAnalyzer builds the hotpath check.
func HotPathAnalyzer() *Analyzer {
	return &Analyzer{
		Name:      "hotpath",
		Doc:       "functions marked //vet:hotpath, and all they statically call, must be provably allocation-free",
		Applies:   hotpathApplies,
		RunModule: runHotPath,
	}
}

// hotpathApplies scopes the check to the model/engine packages; the analysis
// tooling itself allocates freely and is not simulator hot path.
func hotpathApplies(path string) bool {
	return strings.HasPrefix(path, "mcdvfs/internal/") &&
		!strings.HasPrefix(path, "mcdvfs/internal/analysis")
}

// hotAnnotated reports whether fn carries the //vet:hotpath directive in its
// doc comment. CommentGroup.Text strips directives, so the raw list is
// scanned.
func hotAnnotated(fn *flow.Func) bool {
	if fn.Decl.Doc == nil {
		return false
	}
	for _, c := range fn.Decl.Doc.List {
		if c.Text == hotMark || strings.HasPrefix(c.Text, hotMark+" ") {
			return true
		}
	}
	return false
}

// runHotPath walks the static call graph breadth-first from every annotated
// root, scanning each reached function once. Attribution is first-root-wins
// in declaration order, which is deterministic because Program.Funcs is.
func runHotPath(mp *ModulePass) {
	scoped := map[string]bool{}
	for _, pkg := range mp.Pkgs {
		scoped[pkg.Path] = true
	}

	var roots []*flow.Func
	for _, fn := range mp.Prog.Funcs() {
		if hotAnnotated(fn) {
			roots = append(roots, fn)
		}
	}

	visited := map[*flow.Func]bool{}
	queue := make([]hotWork, 0, len(roots))
	for _, r := range roots {
		queue = append(queue, hotWork{fn: r, root: r})
	}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		if visited[w.fn] {
			continue
		}
		visited[w.fn] = true
		s := &hotScan{
			mp:     mp,
			fn:     w.fn,
			root:   w.root,
			info:   w.fn.Pkg.Info,
			report: scoped[w.fn.Pkg.Path],
		}
		s.scan()
		for _, callee := range s.edges {
			if !visited[callee] {
				queue = append(queue, hotWork{fn: callee, root: w.root})
			}
		}
	}
}

// hotWork is one BFS queue entry: a function and the annotated root whose
// closure pulled it in.
type hotWork struct {
	fn, root *flow.Func
}

// hotScan analyzes one reached function.
type hotScan struct {
	mp     *ModulePass
	fn     *flow.Func
	root   *flow.Func
	info   *types.Info
	report bool

	// edges are the static module callees reached from warm code, in call
	// order, deduplicated.
	edges    []*flow.Func
	edgeSeen map[*flow.Func]bool

	// parents maps every node in the body to its syntactic parent, built
	// once for the confinement and method-value checks.
	parents map[ast.Node]ast.Node

	// coldSpans are source ranges that are cold by syntax alone: error
	// returns and panic arguments.
	coldSpans []hotSpan

	// appends are append call sites awaiting the interval pass.
	appends []*ast.CallExpr
	// appendDone marks sites the CFG walk managed to evaluate.
	appendDone map[*ast.CallExpr]bool
}

type hotSpan struct{ pos, end token.Pos }

// hotExternPkgs are stdlib packages every function of which is trusted
// allocation-free (pure math and lock/atomic primitives).
var hotExternPkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

// hotExternFuncs are individually trusted stdlib functions, keyed by
// types.Func.FullName. sync and container/list are listed per method: the
// packages also contain allocating calls (sync.Pool.New, list.PushFront)
// that must not inherit the trust.
var hotExternFuncs = map[string]bool{
	"(*sync.Mutex).Lock":                 true,
	"(*sync.Mutex).Unlock":               true,
	"(*sync.RWMutex).Lock":               true,
	"(*sync.RWMutex).Unlock":             true,
	"(*sync.RWMutex).RLock":              true,
	"(*sync.RWMutex).RUnlock":            true,
	"(*sync.WaitGroup).Add":              true,
	"(*sync.WaitGroup).Done":             true,
	"(*sync.WaitGroup).Wait":             true,
	"(*container/list.List).MoveToFront": true,
	"(*container/list.List).Front":       true,
	"(*container/list.List).Back":        true,
	"(*container/list.List).Len":         true,
	"(*container/list.Element).Next":     true,
}

func (s *hotScan) scan() {
	body := s.fn.Decl.Body
	s.edgeSeen = map[*flow.Func]bool{}
	s.appendDone = map[*ast.CallExpr]bool{}
	s.buildParents(body)
	s.buildColdSpans(body)
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			s.checkCall(n)
		case *ast.AssignStmt:
			s.checkAssign(n)
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok {
				if _, isMap := s.exprTypeUnder(ix.X).(*types.Map); isMap && !s.cold(n) {
					s.reportf(n.Pos(), "map assignment may allocate on insert")
				}
			}
		case *ast.ValueSpec:
			s.checkValueSpec(n)
		case *ast.ReturnStmt:
			s.checkReturn(n)
		case *ast.SendStmt:
			s.checkSend(n)
		case *ast.CompositeLit:
			s.checkCompositeLit(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				s.checkAddrOf(n)
			}
		case *ast.BinaryExpr:
			s.checkStringConcat(n)
		case *ast.FuncLit:
			s.checkFuncLit(n)
		case *ast.DeferStmt:
			s.checkDefer(n)
		case *ast.GoStmt:
			s.reportf(n.Pos(), "go statement allocates a goroutine on the hot path")
		case *ast.SelectorExpr:
			s.checkMethodValue(n)
		}
		return true
	})
	s.checkAppends()
}

// reportf emits one finding unless the node is cold or the function's
// package is outside the pass scope. The root suffix names the annotated
// entry point whose closure reached this function.
func (s *hotScan) reportf(pos token.Pos, format string, args ...any) {
	if !s.report {
		return
	}
	msg := fmt.Sprintf(format, args...)
	if s.fn != s.root {
		msg += fmt.Sprintf(" (hot path via %s)", hotFuncDisplay(s.root.Obj))
	} else {
		msg += fmt.Sprintf(" (in //vet:hotpath %s)", hotFuncDisplay(s.root.Obj))
	}
	s.mp.Reportf(pos, "%s", msg)
}

// hotFuncDisplay renders a function identity the way a reader writes it:
// sim.SimulateSample, (*sim.Runner).Solve.
func hotFuncDisplay(obj *types.Func) string {
	qual := func(p *types.Package) string { return p.Name() }
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "(" + types.TypeString(sig.Recv().Type(), qual) + ")." + obj.Name()
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}

// ---- cold-path detection ----

// buildColdSpans records the source ranges that are cold by syntax: return
// statements whose error-position result is non-nil, and panic arguments.
func (s *hotScan) buildColdSpans(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if s.coldReturn(n) {
				s.coldSpans = append(s.coldSpans, hotSpan{n.Pos(), n.End()})
			}
		case *ast.CallExpr:
			if hotBuiltinName(s.info, n) == "panic" {
				s.coldSpans = append(s.coldSpans, hotSpan{n.Pos(), n.End()})
			}
		}
		return true
	})
}

// coldReturn reports a return that leaves through the error path: the
// enclosing function's final result is an error and the returned expression
// in that position is syntactically non-nil.
func (s *hotScan) coldReturn(ret *ast.ReturnStmt) bool {
	sig, ok := s.fn.Obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().Len() - 1
	if sig.Results().At(last).Type().String() != "error" {
		return false
	}
	if len(ret.Results) != sig.Results().Len() {
		return false // bare return through named results: not provably cold
	}
	if id, ok := ast.Unparen(ret.Results[last]).(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	return true
}

// cold reports whether n only executes on an error/panic exit: it sits
// inside a cold span, or every CFG path from it reaches a cold exit before
// any warm return.
func (s *hotScan) cold(n ast.Node) bool {
	for _, sp := range s.coldSpans {
		if n.Pos() >= sp.pos && n.End() <= sp.end {
			return true
		}
	}
	coldExit := func(m ast.Node) bool {
		if r, ok := m.(*ast.ReturnStmt); ok {
			return s.coldReturn(r)
		}
		return s.isPanicNode(m)
	}
	warmExit := func(m ast.Node) bool {
		if r, ok := m.(*ast.ReturnStmt); ok {
			return !s.coldReturn(r)
		}
		return false
	}
	return flow.EveryPathHits(s.fn.CFG(), n, coldExit, warmExit)
}

func (s *hotScan) isPanicNode(m ast.Node) bool {
	e, ok := m.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := e.X.(*ast.CallExpr)
	return ok && hotBuiltinName(s.info, call) == "panic"
}

// ---- call sites ----

func (s *hotScan) checkCall(call *ast.CallExpr) {
	// Conversions: numeric ones are free; string<->byte/rune traffic and
	// conversions into interfaces allocate.
	if tv, ok := s.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		s.checkConversion(call, tv.Type)
		return
	}
	switch name := hotBuiltinName(s.info, call); name {
	case "make":
		if !s.cold(call) {
			s.reportf(call.Pos(), "make(%s) allocates", s.typeOfString(call))
		}
		return
	case "new":
		if !s.cold(call) {
			s.reportf(call.Pos(), "new(%s) allocates", s.typeOfString(call))
		}
		return
	case "append":
		s.appends = append(s.appends, call)
		return
	case "":
		// not a builtin: fall through to callee resolution
	default:
		// len, cap, copy, delete, panic, min, max, ...: allocation-free (or,
		// for panic, cold by definition).
		return
	}

	obj := flow.CalleeObj(s.info, call)
	if obj != nil {
		callee := s.mp.Prog.FuncOf(obj)
		if callee == nil {
			// Generic instantiations resolve to the instance object; the
			// index holds the origin declaration.
			callee = s.mp.Prog.FuncOf(obj.Origin())
		}
		if callee != nil {
			s.checkVariadicSlice(call, obj)
			s.checkArgBoxing(call)
			if !s.cold(call) && !s.edgeSeen[callee] {
				s.edgeSeen[callee] = true
				s.edges = append(s.edges, callee)
			}
			return
		}
		// Out-of-module: trusted allowlist or a finding.
		if pkg := obj.Pkg(); pkg != nil && hotExternPkgs[pkg.Path()] {
			return
		}
		if hotExternFuncs[obj.FullName()] || hotExternFuncs[obj.Origin().FullName()] {
			return
		}
		if !s.cold(call) {
			s.reportf(call.Pos(), "call into %s cannot be proven allocation-free", obj.FullName())
		}
		return
	}
	// Dynamic: interface method or function value.
	if !s.cold(call) {
		s.reportf(call.Pos(), "dynamic call through %s cannot be proven allocation-free", types.ExprString(call.Fun))
	}
	s.checkVariadicSliceDyn(call)
	s.checkArgBoxing(call)
}

// checkConversion flags the conversions that materialize memory.
func (s *hotScan) checkConversion(call *ast.CallExpr, target types.Type) {
	arg := call.Args[0]
	if tv, ok := s.info.Types[call]; ok && tv.Value != nil {
		return // constant-folded conversion
	}
	if s.boxes(target, arg) {
		if !s.cold(call) {
			s.reportf(call.Pos(), "interface boxing: conversion of %s to %s allocates",
				s.typeDisplay(arg), hotTypeString(target))
		}
		return
	}
	at := s.exprType(arg)
	if at == nil {
		return
	}
	tb, tIsBasic := target.Underlying().(*types.Basic)
	ab, aIsBasic := at.Underlying().(*types.Basic)
	switch {
	case tIsBasic && tb.Info()&types.IsString != 0 && !(aIsBasic && ab.Info()&types.IsString != 0):
		if !s.cold(call) {
			s.reportf(call.Pos(), "conversion %s(%s) allocates a string", hotTypeString(target), s.typeDisplay(arg))
		}
	case aIsBasic && ab.Info()&types.IsString != 0 && !tIsBasic:
		if _, isSlice := target.Underlying().(*types.Slice); isSlice {
			if !s.cold(call) {
				s.reportf(call.Pos(), "conversion %s(string) copies and allocates", hotTypeString(target))
			}
		}
	}
}

// checkVariadicSlice flags the hidden []T the compiler builds at a variadic
// call with loose arguments (f(a, b, c) where f is f(...T)); forwarding with
// an ellipsis reuses the caller's slice.
func (s *hotScan) checkVariadicSlice(call *ast.CallExpr, obj *types.Func) {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || !sig.Variadic() || call.Ellipsis.IsValid() {
		return
	}
	if len(call.Args) < sig.Params().Len() {
		return // variadic part empty: no slice
	}
	if s.cold(call) {
		return
	}
	s.reportf(call.Pos(), "variadic call to %s allocates its argument slice", obj.Name())
}

func (s *hotScan) checkVariadicSliceDyn(call *ast.CallExpr) {
	tv, ok := s.info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || !sig.Variadic() || call.Ellipsis.IsValid() {
		return
	}
	if len(call.Args) < sig.Params().Len() || s.cold(call) {
		return
	}
	s.reportf(call.Pos(), "variadic call to %s allocates its argument slice", types.ExprString(call.Fun))
}

// checkArgBoxing flags concrete values meeting interface-typed parameters.
func (s *hotScan) checkArgBoxing(call *ast.CallExpr) {
	tv, ok := s.info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarded slice: no per-element boxing
			}
			if last, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
				pt = last.Elem()
			}
		case i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		}
		if s.boxes(pt, arg) && !s.cold(call) {
			s.reportf(arg.Pos(), "interface boxing: %s argument passed as %s allocates",
				s.typeDisplay(arg), hotTypeString(pt))
		}
	}
}

// ---- boxing at stores ----

// boxes reports a concrete-to-interface conversion: target is an interface
// (not a type parameter) and val's type is concrete and non-nil.
func (s *hotScan) boxes(target types.Type, val ast.Expr) bool {
	if target == nil || val == nil {
		return false
	}
	if _, isTP := target.(*types.TypeParam); isTP {
		return false
	}
	if !types.IsInterface(target) {
		return false
	}
	tv, ok := s.info.Types[val]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	if _, isTP := tv.Type.(*types.TypeParam); isTP {
		return false
	}
	return !types.IsInterface(tv.Type)
}

func (s *hotScan) checkAssign(as *ast.AssignStmt) {
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 {
		if bt, ok := s.exprType(as.Lhs[0]).(*types.Basic); ok && bt.Info()&types.IsString != 0 {
			if !s.cold(as) {
				s.reportf(as.Pos(), "string concatenation allocates")
			}
		}
	}
	// Map writes allocate on insert; the boxing check below additionally
	// covers interface-valued maps.
	for _, l := range as.Lhs {
		if ix, ok := ast.Unparen(l).(*ast.IndexExpr); ok {
			if _, isMap := s.exprTypeUnder(ix.X).(*types.Map); isMap && !s.cold(as) {
				s.reportf(l.Pos(), "map assignment may allocate on insert")
			}
		}
	}
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return // := never boxes (LHS adopts RHS type); tuple results untracked
	}
	for i, l := range as.Lhs {
		if id, ok := ast.Unparen(l).(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		if s.boxes(s.exprType(l), as.Rhs[i]) && !s.cold(as) {
			s.reportf(as.Rhs[i].Pos(), "interface boxing: %s assigned to %s allocates",
				s.typeDisplay(as.Rhs[i]), hotTypeString(s.exprType(l)))
		}
	}
}

func (s *hotScan) checkValueSpec(vs *ast.ValueSpec) {
	if vs.Type == nil {
		return
	}
	tv, ok := s.info.Types[vs.Type]
	if !ok {
		return
	}
	for _, v := range vs.Values {
		if s.boxes(tv.Type, v) && !s.cold(vs) {
			s.reportf(v.Pos(), "interface boxing: %s declared as %s allocates",
				s.typeDisplay(v), hotTypeString(tv.Type))
		}
	}
}

func (s *hotScan) checkReturn(ret *ast.ReturnStmt) {
	sig, ok := s.fn.Obj.Type().(*types.Signature)
	if !ok || len(ret.Results) != sig.Results().Len() {
		return
	}
	for i, r := range ret.Results {
		rt := sig.Results().At(i).Type()
		if rt.String() == "error" {
			continue // returning a live error is the error path's business
		}
		if s.boxes(rt, r) && !s.cold(ret) {
			s.reportf(r.Pos(), "interface boxing: returning %s as %s allocates",
				s.typeDisplay(r), hotTypeString(rt))
		}
	}
}

func (s *hotScan) checkSend(send *ast.SendStmt) {
	ch, ok := s.exprTypeUnder(send.Chan).(*types.Chan)
	if !ok {
		return
	}
	if s.boxes(ch.Elem(), send.Value) && !s.cold(send) {
		s.reportf(send.Value.Pos(), "interface boxing: %s sent as %s allocates",
			s.typeDisplay(send.Value), hotTypeString(ch.Elem()))
	}
}

// ---- composite construction ----

func (s *hotScan) checkCompositeLit(lit *ast.CompositeLit) {
	tv, ok := s.info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	switch u := tv.Type.Underlying().(type) {
	case *types.Slice:
		if !s.cold(lit) && !s.addrOfParent(lit) {
			s.reportf(lit.Pos(), "%s literal allocates its backing array", hotTypeString(tv.Type))
		}
		for _, elt := range lit.Elts {
			s.checkLitElt(u.Elem(), elt)
		}
	case *types.Map:
		if !s.cold(lit) && !s.addrOfParent(lit) {
			s.reportf(lit.Pos(), "%s literal allocates", hotTypeString(tv.Type))
		}
		for _, elt := range lit.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				s.checkLitElt(u.Key(), kv.Key)
				s.checkLitElt(u.Elem(), kv.Value)
			}
		}
	case *types.Struct:
		for _, elt := range lit.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					for i := 0; i < u.NumFields(); i++ {
						if u.Field(i).Name() == id.Name {
							s.checkLitElt(u.Field(i).Type(), kv.Value)
							break
						}
					}
				}
				continue
			}
		}
		// Positional struct literals are rare in this tree; fields line up
		// with elements when present.
		if len(lit.Elts) > 0 {
			if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed && len(lit.Elts) == u.NumFields() {
				for i, elt := range lit.Elts {
					s.checkLitElt(u.Field(i).Type(), elt)
				}
			}
		}
	case *types.Array:
		for _, elt := range lit.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				s.checkLitElt(u.Elem(), kv.Value)
			} else {
				s.checkLitElt(u.Elem(), elt)
			}
		}
	}
}

func (s *hotScan) checkLitElt(target types.Type, elt ast.Expr) {
	if kv, ok := elt.(*ast.KeyValueExpr); ok {
		elt = kv.Value
	}
	if s.boxes(target, elt) && !s.cold(elt) {
		s.reportf(elt.Pos(), "interface boxing: %s stored as %s in composite literal allocates",
			s.typeDisplay(elt), hotTypeString(target))
	}
}

// addrOfParent reports a composite literal whose direct parent is &lit; the
// address-of check owns that site (one finding, not two).
func (s *hotScan) addrOfParent(lit *ast.CompositeLit) bool {
	u, ok := s.parents[lit].(*ast.UnaryExpr)
	return ok && u.Op == token.AND
}

// checkAddrOf flags &T{} — a heap allocation unless the pointer provably
// never leaves the function (locally confined: defined into a local whose
// every use is a field access or index).
func (s *hotScan) checkAddrOf(u *ast.UnaryExpr) {
	lit, ok := ast.Unparen(u.X).(*ast.CompositeLit)
	if !ok {
		return
	}
	if s.cold(u) {
		return
	}
	if s.confined(u) {
		return
	}
	s.reportf(u.Pos(), "&%s{} escapes to the heap", s.litTypeName(lit))
}

func (s *hotScan) litTypeName(lit *ast.CompositeLit) string {
	if tv, ok := s.info.Types[lit]; ok && tv.Type != nil {
		return hotTypeString(tv.Type)
	}
	return types.ExprString(lit.Type)
}

// confined proves the simple non-escaping pattern: x := &T{} where every
// other use of x is a field selection or an index — no call argument,
// return, store, send, capture, or re-exposure. Anything it cannot prove is
// an escape.
func (s *hotScan) confined(u *ast.UnaryExpr) bool {
	as, ok := s.parents[u].(*ast.AssignStmt)
	if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := s.info.Defs[id].(*types.Var)
	if !ok {
		return false
	}
	safe := true
	ast.Inspect(s.fn.Decl.Body, func(n ast.Node) bool {
		use, ok := n.(*ast.Ident)
		if !ok || s.info.Uses[use] != obj {
			return true
		}
		switch p := s.parents[use].(type) {
		case *ast.SelectorExpr:
			if sel, ok := s.info.Selections[p]; ok && sel.Kind() == types.FieldVal && p.X == use {
				return true // field read/write on the confined object
			}
			safe = false
		case *ast.IndexExpr:
			if p.X != use {
				safe = false
			}
		case *ast.AssignStmt:
			for _, l := range p.Lhs {
				if l == use {
					return true // rebinding x drops this allocation
				}
			}
			safe = false
		default:
			safe = false
		}
		return safe
	})
	return safe
}

// checkStringConcat flags non-constant string + at the outermost node of a
// concat chain (one finding per expression, not per operator).
func (s *hotScan) checkStringConcat(b *ast.BinaryExpr) {
	if b.Op != token.ADD {
		return
	}
	if tv, ok := s.info.Types[b]; ok && tv.Value != nil {
		return // constant-folded at compile time
	}
	bt, ok := s.exprTypeUnder(b).(*types.Basic)
	if !ok || bt.Info()&types.IsString == 0 {
		return
	}
	if p, ok := s.parents[b].(*ast.BinaryExpr); ok && p.Op == token.ADD {
		if pt, ok := s.exprTypeUnder(p).(*types.Basic); ok && pt.Info()&types.IsString != 0 {
			return
		}
	}
	if !s.cold(b) {
		s.reportf(b.Pos(), "string concatenation allocates")
	}
}

// ---- closures, defers, goroutines ----

func (s *hotScan) checkFuncLit(lit *ast.FuncLit) {
	captured := s.capturedVar(lit)
	if captured == nil {
		return // a non-capturing literal compiles to a static function value
	}
	if s.cold(lit) {
		return
	}
	if d, ok := s.parents[lit].(*ast.DeferStmt); ok && d.Call.Fun == lit {
		if res := s.namedResult(captured); res {
			s.reportf(lit.Pos(), "deferred closure captures named result %s, forcing it to the heap", captured.Name())
			return
		}
	}
	s.reportf(lit.Pos(), "closure captures %s and allocates", captured.Name())
}

// capturedVar returns a variable the literal closes over (the first in
// source order), or nil for a static literal.
func (s *hotScan) capturedVar(lit *ast.FuncLit) *types.Var {
	var captured *types.Var
	pkgScope := s.fn.Pkg.Types.Scope()
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := s.info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == pkgScope || v.Parent() == types.Universe {
			return true // package globals are static references, not captures
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal
		}
		captured = v
		return false
	})
	return captured
}

// namedResult reports whether v is a named result of the enclosing function.
func (s *hotScan) namedResult(v *types.Var) bool {
	ft := s.fn.Decl.Type
	if ft.Results == nil {
		return false
	}
	for _, f := range ft.Results.List {
		for _, name := range f.Names {
			if s.info.Defs[name] == v {
				return true
			}
		}
	}
	return false
}

func (s *hotScan) checkDefer(d *ast.DeferStmt) {
	if s.cold(d) {
		return
	}
	for p := s.parents[d]; p != nil; p = s.parents[p] {
		switch p.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			s.reportf(d.Pos(), "defer inside a loop heap-allocates its record")
			return
		case *ast.FuncLit:
			return // the literal is the defer's frame
		}
	}
}

func (s *hotScan) checkMethodValue(sel *ast.SelectorExpr) {
	selection, ok := s.info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return
	}
	if call, ok := s.parents[sel].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == sel {
		return // ordinary method call
	}
	if s.cold(sel) {
		return
	}
	s.reportf(sel.Pos(), "method value %s allocates its bound receiver", types.ExprString(sel))
}

// ---- appends ----

// checkAppends runs the interval fixpoint once and proves each append site
// in place: len(base) + added <= cap(base). Sites the CFG walk cannot reach
// (inside function literals) stay unproven.
func (s *hotScan) checkAppends() {
	if len(s.appends) == 0 {
		return
	}
	site := map[*ast.CallExpr]bool{}
	for _, a := range s.appends {
		site[a] = true
	}
	ev := &absint.IntervalEval{Info: s.info}
	cfg := s.fn.CFG()
	envs := ev.Interp().Analyze(cfg, absint.NewEnv[absint.Interval]())
	for _, blk := range cfg.Blocks {
		entry := envs[blk]
		if entry == nil {
			continue
		}
		ev.Interp().Walk(blk, entry, func(n ast.Node, env *absint.Env[absint.Interval]) {
			ast.Inspect(flow.HeaderExpr(n), func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok || !site[call] || s.appendDone[call] {
					return true
				}
				s.appendDone[call] = true
				s.checkAppendAt(call, ev, env)
				return true
			})
		})
	}
	for _, a := range s.appends {
		if !s.appendDone[a] && !s.cold(a) && !s.guardedInPlace(a) {
			s.reportf(a.Pos(), "append without provable capacity may reallocate")
		}
	}
}

func (s *hotScan) checkAppendAt(call *ast.CallExpr, ev *absint.IntervalEval, env *absint.Env[absint.Interval]) {
	if len(call.Args) == 0 || s.cold(call) || s.guardedInPlace(call) {
		return
	}
	base := call.Args[0]
	added := absint.Exact(float64(len(call.Args) - 1))
	if call.Ellipsis.IsValid() {
		var ok bool
		added, ok = ev.LenOf(call.Args[len(call.Args)-1], env)
		if !ok || !added.Known {
			s.reportf(call.Pos(), "append of a slice with unknown length may reallocate %s",
				types.ExprString(base))
			return
		}
	}
	ln, lok := ev.LenOf(base, env)
	cp, cok := ev.CapOf(base, env)
	if lok && cok && ln.Known && cp.Known &&
		!math.IsInf(ln.Hi, 1) && ln.Hi+added.Hi <= cp.Lo {
		return // provably in place
	}
	s.reportf(call.Pos(), "append may reallocate %s: cannot prove len %s + %s fits cap %s",
		types.ExprString(base), ln.String(), added.String(), cp.String())
}

// guardedInPlace recognizes the arena-refill idiom relationally: a
// single-element append whose statement sits directly in the then-branch of
// `if len(x) < cap(x)` (or `cap(x) > len(x)`) over the same slice
// expression. The guard IS the in-place condition — len+1 <= cap — so the
// proof needs no interval facts and survives the widening that erases
// finite bounds at loop heads. Any statement between the guard and the
// append that mentions the slice voids the proof.
func (s *hotScan) guardedInPlace(call *ast.CallExpr) bool {
	if call.Ellipsis.IsValid() || len(call.Args) != 2 {
		return false
	}
	baseStr := types.ExprString(call.Args[0])
	var stmt ast.Stmt
	for n := ast.Node(call); n != nil; n = s.parents[n] {
		if st, ok := n.(ast.Stmt); ok {
			stmt = st
			break
		}
	}
	if stmt == nil {
		return false
	}
	body, ok := s.parents[stmt].(*ast.BlockStmt)
	if !ok {
		return false
	}
	ifs, ok := s.parents[body].(*ast.IfStmt)
	if !ok || ifs.Body != body || !s.lenCapGuard(ifs.Cond, baseStr) {
		return false
	}
	for _, st := range body.List {
		if st == stmt {
			return true
		}
		touched := false
		ast.Inspect(st, func(m ast.Node) bool {
			if e, ok := m.(ast.Expr); ok && types.ExprString(e) == baseStr {
				touched = true
				return false
			}
			return true
		})
		if touched {
			return false
		}
	}
	return false
}

// lenCapGuard matches `len(x) < cap(x)` and `cap(x) > len(x)` for the given
// slice rendering x.
func (s *hotScan) lenCapGuard(cond ast.Expr, baseStr string) bool {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch b.Op {
	case token.LSS:
		return s.builtinOn(b.X, "len", baseStr) && s.builtinOn(b.Y, "cap", baseStr)
	case token.GTR:
		return s.builtinOn(b.X, "cap", baseStr) && s.builtinOn(b.Y, "len", baseStr)
	}
	return false
}

// builtinOn reports whether e is the builtin name applied to baseStr.
func (s *hotScan) builtinOn(e ast.Expr, name, baseStr string) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	if _, ok := s.info.Uses[id].(*types.Builtin); !ok {
		return false
	}
	return types.ExprString(call.Args[0]) == baseStr
}

// ---- shared helpers ----

func (s *hotScan) buildParents(body *ast.BlockStmt) {
	s.parents = map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			s.parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
}

// typeOfString renders the type operand of a make/new call as written.
func (s *hotScan) typeOfString(call *ast.CallExpr) string {
	if len(call.Args) > 0 {
		return types.ExprString(call.Args[0])
	}
	return types.ExprString(call)
}

func (s *hotScan) exprType(e ast.Expr) types.Type {
	if tv, ok := s.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (s *hotScan) exprTypeUnder(e ast.Expr) types.Type {
	if t := s.exprType(e); t != nil {
		return t.Underlying()
	}
	return nil
}

func (s *hotScan) typeDisplay(e ast.Expr) string {
	t := s.exprType(e)
	if t == nil {
		return types.ExprString(e)
	}
	return types.ExprString(e) + " (" + hotTypeString(t) + ")"
}

// hotTypeString renders a type with package names only (no import paths),
// matching how diagnostics read.
func hotTypeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

func hotBuiltinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}
