package analysis

// rangecheck: interval abstract interpretation over the model packages'
// CFGs (internal/analysis/absint), aimed at the three numeric failure modes
// a DVFS reproduction actually hits:
//
//   - division by a value the analysis can show reaches zero — the empty
//     sample window, the zero-instruction spec, the elapsed-time accumulator
//     divided before anything accumulated;
//   - a definitely-negative quantity flowing into a parameter whose name or
//     type says it is a non-negative physical magnitude (nanoseconds,
//     joules, watts, megahertz): energies and durations below zero are
//     arithmetic bugs wearing a physics costume;
//   - an index provably outside a table: operating-point lookups into
//     ladders and OPP tables with a hand-computed index.
//
// Everything runs on the interval domain's evidence semantics: no fact, no
// finding. The seeds are where the physics enters — and they are consulted
// only for values nothing was learned about:
//
//   - a literal or constant is its own interval;
//   - len(x) is at least zero, exactly n after make([]T, n) or a composite
//     literal, and grows by k across append(x, e1..ek);
//   - a value whose type or name says MHz inherits the module's operating-
//     point envelope, discovered in Prepare by folding the constant
//     arguments of every freq.Ladder call — the same range the simulator
//     can actually be configured to run at (GHz and Hz scale it);
//   - other physical units (durations, energies, powers, voltages, rates)
//     seed [0, +inf): non-negative, but with zero admitted, which is
//     exactly why an unguarded division by one is worth flagging;
//   - function results propagate through per-function summaries computed in
//     Prepare over two deterministic rounds (like the units check), with
//     the callee's name suffix as fallback (dev.RowHitNS() is [0, +inf) by
//     name from any package).
import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
	"strconv"
	"strings"

	"mcdvfs/internal/analysis/absint"
	"mcdvfs/internal/analysis/flow"
)

// rangeApplies scopes the check to the model and engine packages; the
// analysis tooling itself (and its fixtures) stays out.
func rangeApplies(path string) bool {
	return strings.HasPrefix(path, "mcdvfs/internal/") &&
		!strings.HasPrefix(path, "mcdvfs/internal/analysis")
}

// rangeState carries Prepare-computed facts into the concurrent passes.
// Written once in prepare, read-only afterwards.
type rangeState struct {
	// opp is the operating-point envelope in MHz, joined over every
	// freq.Ladder call with constant bounds in the module.
	opp   absint.Interval
	oppOK bool
	// summaries maps module functions with one numeric result to the joined
	// interval of their return expressions.
	summaries map[*types.Func]absint.Interval
	// paramUnits caches each module function's parameter units for the
	// negative-quantity check.
	paramUnits map[*types.Func]*unitSummary
	// contracts indexes //vet:requires / ensures / invariant annotations.
	// Requires seed summary entry environments, ensures tighten the computed
	// summaries, and invariants seed field reads — the contract check's facts
	// sharpening this check's intervals (and vice versa).
	contracts *contractIndex
	// tupleSummaries maps multi-result functions to per-result intervals
	// derived from their ensures conjuncts, for tuple-assignment call sites
	// the single-result summary table cannot describe.
	tupleSummaries map[*types.Func][]absint.Interval
}

// RangeCheckAnalyzer builds the rangecheck analyzer.
func RangeCheckAnalyzer() *Analyzer {
	st := &rangeState{}
	return &Analyzer{
		Name:    "rangecheck",
		Doc:     "interval analysis: divisions that can reach zero, negative physical quantities at call boundaries, provably out-of-range table indices",
		Applies: rangeApplies,
		Prepare: st.prepare,
		Run:     st.run,
	}
}

// summaryRounds is how many times prepare re-derives function summaries;
// round n+1 reads round n's results, so two rounds resolve one level of
// call chaining beyond the seeds (matching the units check's depth).
const summaryRounds = 2

func (st *rangeState) prepare(prog *flow.Program) {
	st.discoverOPP(prog)
	st.contracts = collectContracts(prog)
	st.tupleSummaries = st.ensuresTupleSummaries(prog)
	st.paramUnits = make(map[*types.Func]*unitSummary, len(prog.Funcs()))
	for _, fn := range prog.Funcs() {
		if sum := summarize(fn.Pkg.Info, fn.Decl.Type, fn.Decl.Name.Name); sum != nil {
			st.paramUnits[fn.Obj] = sum
		}
	}

	st.summaries = map[*types.Func]absint.Interval{}
	for round := 0; round < summaryRounds; round++ {
		prev := st.summaries
		next := make(map[*types.Func]absint.Interval, len(prev))
		for _, fn := range prog.Funcs() {
			if iv, ok := st.resultInterval(fn, prev); ok {
				next[fn.Obj] = iv
			}
		}
		st.summaries = next
	}
	st.refineWithEnsures(prog)
}

// refineWithEnsures intersects each function summary with its `ret op const`
// ensures conjuncts (and creates summaries from ensures alone for functions
// the interval walk could not summarize). The annotation is a proof
// obligation discharged by the contract check, so treating it as a fact here
// is sound modulo a finding the same run would surface.
func (st *rangeState) refineWithEnsures(prog *flow.Program) {
	for _, fn := range prog.Funcs() {
		fc := st.contracts.funcs[fn.Obj]
		if fc == nil || len(fc.ensures) == 0 {
			continue
		}
		sc := newFuncScope(fn.Obj, fn.Decl)
		if sc.retIdx < 0 || sc.retVar == nil {
			continue
		}
		basic, isBasic := sc.retVar.Type().Underlying().(*types.Basic)
		if !isBasic || basic.Info()&types.IsNumeric == 0 {
			continue
		}
		cur, have := st.summaries[fn.Obj]
		if !have {
			cur = absint.Range(math.Inf(-1), math.Inf(1))
		}
		refined := false
		for _, cj := range fc.ensConjs() {
			if !cj.rhs.isConst || len(cj.lhs.path) != 1 {
				continue
			}
			if name := cj.lhs.path[0]; name != "ret" && name != sc.retVar.Name() {
				continue
			}
			nv := absint.ApplyCmp(cur, cj.op, absint.Exact(cj.rhs.val), isIntType(sc.retVar.Type()))
			if nv.Known {
				cur, refined = nv, true
			}
		}
		if refined {
			st.summaries[fn.Obj] = cur
		}
	}
}

// ensuresTupleSummaries turns the ensures conjuncts of multi-result
// functions into per-result intervals, so tuple assignments from annotated
// callees keep the published facts instead of clobbering every target to
// top. Like refineWithEnsures, each annotation is a proof obligation the
// contract check discharges in the same run.
func (st *rangeState) ensuresTupleSummaries(prog *flow.Program) map[*types.Func][]absint.Interval {
	out := map[*types.Func][]absint.Interval{}
	for _, fn := range prog.Funcs() {
		fc := st.contracts.funcs[fn.Obj]
		if fc == nil || len(fc.ensures) == 0 {
			continue
		}
		sc := newFuncScope(fn.Obj, fn.Decl)
		n := sc.sig.Results().Len()
		if n < 2 {
			continue
		}
		ivs := make([]absint.Interval, n)
		refined := false
		for _, cj := range fc.ensConjs() {
			if !cj.rhs.isConst || len(cj.lhs.path) != 1 {
				continue
			}
			idx, ok := sc.resultIdx[cj.lhs.path[0]]
			if !ok {
				continue
			}
			r := sc.sig.Results().At(idx)
			basic, isBasic := r.Type().Underlying().(*types.Basic)
			if !isBasic || basic.Info()&types.IsNumeric == 0 {
				continue
			}
			cur := ivs[idx]
			if !cur.Known {
				cur = absint.Range(math.Inf(-1), math.Inf(1))
			}
			if nv := absint.ApplyCmp(cur, cj.op, absint.Exact(cj.rhs.val), isIntType(r.Type())); nv.Known {
				ivs[idx], refined = nv, true
			}
		}
		if refined {
			out[fn.Obj] = ivs
		}
	}
	return out
}

// discoverOPP folds the constant bounds of every freq.Ladder(lo, hi, step)
// call in the module into one MHz envelope.
func (st *rangeState) discoverOPP(prog *flow.Program) {
	lo, hi := math.Inf(1), math.Inf(-1)
	found := false
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 3 {
					return true
				}
				obj := flow.CalleeObj(pkg.Info, call)
				if obj == nil || obj.Name() != "Ladder" || obj.Pkg() == nil ||
					obj.Pkg().Path() != "mcdvfs/internal/freq" {
					return true
				}
				clo, okLo := constArg(pkg.Info, call.Args[0])
				chi, okHi := constArg(pkg.Info, call.Args[1])
				if okLo && okHi && clo <= chi {
					lo, hi = math.Min(lo, clo), math.Max(hi, chi)
					found = true
				}
				return true
			})
		}
	}
	if found && lo > 0 {
		st.opp, st.oppOK = absint.Range(lo, hi), true
	}
}

func constArg(info *types.Info, e ast.Expr) (float64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		f, _ := constant.Float64Val(constant.ToFloat(tv.Value))
		return f, true
	}
	return 0, false
}

// resultInterval joins the intervals of fn's return expressions, for
// functions whose only non-error result is numeric.
func (st *rangeState) resultInterval(fn *flow.Func, prev map[*types.Func]absint.Interval) (absint.Interval, bool) {
	sig, ok := fn.Obj.Type().(*types.Signature)
	if !ok {
		return absint.Top(), false
	}
	resIdx, resVar := -1, (*types.Var)(nil)
	for i := 0; i < sig.Results().Len(); i++ {
		r := sig.Results().At(i)
		if r.Type().String() == "error" {
			continue
		}
		basic, isBasic := r.Type().Underlying().(*types.Basic)
		if !isBasic || basic.Info()&types.IsNumeric == 0 {
			return absint.Top(), false
		}
		if resIdx >= 0 {
			return absint.Top(), false // two numeric results: untracked
		}
		resIdx, resVar = i, r
	}
	if resIdx < 0 {
		return absint.Top(), false
	}

	info := fn.Pkg.Info
	ev := st.newEval(info, prev)
	cfg := fn.CFG()
	// The entry environment carries the function's own requires and its
	// receiver's invariants: a summary is the callee's view, and the callee
	// may assume its contract (call sites discharge it).
	envs := ev.Interp().Analyze(cfg, st.contracts.entryEnv(fn.Obj, fn.Decl, ev))
	joined := absint.Interval{}
	first := true
	lat := absint.IntervalLattice{}
	for _, blk := range cfg.Blocks {
		entry := envs[blk]
		if entry == nil {
			continue
		}
		ev.Interp().Walk(blk, entry, func(n ast.Node, env *absint.Env[absint.Interval]) {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return
			}
			var iv absint.Interval
			switch {
			case resIdx < len(ret.Results):
				iv = ev.Expr(ret.Results[resIdx], env)
			case len(ret.Results) == 0 && resVar.Name() != "":
				// Bare return with named results: read the named result var.
				if v, okv := env.Var(resVar); okv {
					iv = v
				}
			}
			if first {
				joined, first = iv, false
			} else {
				joined = lat.Join(joined, iv)
			}
		})
	}
	if first || !joined.Known {
		return absint.Top(), false
	}
	return joined, true
}

// newEval wires an interval evaluator with the physics seeds and the given
// summary snapshot.
func (st *rangeState) newEval(info *types.Info, summaries map[*types.Func]absint.Interval) *absint.IntervalEval {
	var ev *absint.IntervalEval
	ev = &absint.IntervalEval{
		Info: info,
		VarSeed: func(v *types.Var) (absint.Interval, bool) {
			unit := typeUnit(v.Type())
			if unit == "" {
				unit = suffixUnit(v.Name())
			}
			if iv, ok := st.unitSeed(unit); ok {
				return iv, true
			}
			if isUnsignedType(v.Type()) {
				return absint.Range(0, math.Inf(1)), true
			}
			return absint.Top(), false
		},
		PathSeed: func(sel *ast.SelectorExpr) (absint.Interval, bool) {
			unit := ""
			if tv, ok := info.Types[sel]; ok && tv.Type != nil {
				unit = typeUnit(tv.Type)
			}
			if unit == "" {
				unit = suffixUnit(sel.Sel.Name)
			}
			iv, ok := st.unitSeed(unit)
			if !ok {
				if tv, okt := info.Types[sel]; okt && tv.Type != nil && isUnsignedType(tv.Type) {
					iv, ok = absint.Range(0, math.Inf(1)), true
				}
			}
			// A //vet:invariant on the base type narrows the field further.
			return st.contracts.invariantFieldSeed(info, sel, iv, ok)
		},
		CallEnv: func(call *ast.CallExpr, env *absint.Env[absint.Interval]) (absint.Interval, bool) {
			// Monotone math functions map argument bounds to result bounds —
			// the fact that lets int(math.Round(x)) keep x's sign.
			obj := flow.CalleeObj(info, call)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "math" || len(call.Args) != 1 {
				return absint.Top(), false
			}
			var f func(float64) float64
			switch obj.Name() {
			case "Round":
				f = math.Round
			case "Floor":
				f = math.Floor
			case "Ceil":
				f = math.Ceil
			case "Trunc":
				f = math.Trunc
			default:
				return absint.Top(), false
			}
			x := ev.Expr(call.Args[0], env)
			if !x.Known {
				return absint.Top(), false
			}
			return absint.Range(f(x.Lo), f(x.Hi)), true
		},
		CallTuple: func(call *ast.CallExpr, n int) ([]absint.Interval, bool) {
			obj := flow.CalleeObj(info, call)
			if obj == nil {
				return nil, false
			}
			ivs, ok := st.tupleSummaries[obj]
			if !ok || len(ivs) != n {
				return nil, false
			}
			return ivs, true
		},
		Call: func(call *ast.CallExpr) (absint.Interval, bool) {
			obj := flow.CalleeObj(info, call)
			if obj == nil {
				return absint.Top(), false
			}
			if iv, ok := summaries[obj]; ok {
				return iv, true
			}
			if iv, ok := mathSeed(obj); ok {
				return iv, true
			}
			// Fallback: the callee's name suffix is a unit claim good enough
			// to seed a range (RowHitNS() is nanoseconds from any package).
			return st.unitSeed(suffixUnit(obj.Name()))
		},
	}
	return ev
}

// freqScale maps frequency units to their factor relative to MHz; values
// carrying one inherit the operating-point envelope.
var freqScale = map[string]float64{
	"MHz": 1, "GHz": 1e-3, "Hz": 1e6, "kHz": 1e3,
}

// unitSeed turns a unit string into a physics seed.
func (st *rangeState) unitSeed(unit string) (absint.Interval, bool) {
	if unit == "" {
		return absint.Top(), false
	}
	if scale, ok := freqScale[unit]; ok {
		if st.oppOK {
			return absint.Range(st.opp.Lo*scale, st.opp.Hi*scale), true
		}
		return absint.Range(0, math.Inf(1)), true
	}
	switch unit {
	case "ns", "us", "ms", "s",
		"J", "mJ", "uJ", "nJ", "pJ", "kJ", "MJ",
		"W", "mW", "uW", "kW",
		"V", "mV", "uV",
		"1/ns", "1/s", "1/cycle",
		"B", "KiB", "MiB", "GiB":
		return absint.Range(0, math.Inf(1)), true
	}
	return absint.Top(), false
}

// nonNegUnits are the unit classes the negative-quantity check guards: a
// definitely-negative value flowing into one of these parameters is a bug.
func nonNegUnit(unit string) bool {
	switch unit {
	case "MHz", "GHz", "Hz", "kHz",
		"ns", "us", "ms", "s",
		"J", "mJ", "uJ", "nJ", "pJ", "kJ", "MJ",
		"W", "mW", "uW", "kW",
		"V", "mV", "uV",
		"1/ns", "1/s", "1/cycle",
		"B", "KiB", "MiB", "GiB":
		return true
	}
	return false
}

// mathSeed covers the handful of stdlib results with guaranteed signs.
func mathSeed(obj *types.Func) (absint.Interval, bool) {
	if obj.Pkg() == nil || obj.Pkg().Path() != "math" {
		return absint.Top(), false
	}
	switch obj.Name() {
	case "Abs", "Sqrt":
		return absint.Range(0, math.Inf(1)), true
	case "Exp", "Exp2":
		return absint.Interval{Lo: 0, Hi: math.Inf(1), NonZero: true, Known: true}, true
	}
	return absint.Top(), false
}

func (st *rangeState) run(pass *Pass) {
	if !pass.IncludeSrc {
		return
	}
	info := pass.Pkg.Info
	ev := st.newEval(info, st.summaries)
	for _, f := range pass.Pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			st.checkFunc(pass, ev, fd)
		}
	}
}

// checkFunc runs the fixpoint over one function and screens every node
// against the three finding classes.
func (st *rangeState) checkFunc(pass *Pass, ev *absint.IntervalEval, fd *ast.FuncDecl) {
	var cfg *flow.CFG
	entry := absint.NewEnv[absint.Interval]()
	if obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
		if fn := pass.Prog.FuncOf(obj); fn != nil {
			cfg = fn.CFG()
		}
		entry = st.contracts.entryEnv(obj, fd, ev)
	}
	if cfg == nil {
		cfg = flow.New(fd)
	}
	it := ev.Interp()
	envs := it.Analyze(cfg, entry)
	for _, blk := range cfg.Blocks {
		entry := envs[blk]
		if entry == nil {
			continue
		}
		it.Walk(blk, entry, func(n ast.Node, env *absint.Env[absint.Interval]) {
			st.checkNode(pass, it, ev, flow.HeaderExpr(n), env)
		})
	}
}

func (st *rangeState) checkNode(pass *Pass, it *absint.Interp[absint.Interval], ev *absint.IntervalEval, n ast.Node, env *absint.Env[absint.Interval]) {
	if n == nil {
		return
	}
	absint.CondWalk(it, n, env, func(m ast.Node, env *absint.Env[absint.Interval]) bool {
		switch m := m.(type) {
		case *ast.BinaryExpr:
			if m.Op == token.QUO || m.Op == token.REM {
				st.checkDivisor(pass, ev, m.Y, m.OpPos, env)
			}
		case *ast.AssignStmt:
			if m.Tok == token.QUO_ASSIGN || m.Tok == token.REM_ASSIGN {
				st.checkDivisor(pass, ev, m.Rhs[0], m.TokPos, env)
			}
		case *ast.IndexExpr:
			st.checkIndex(pass, ev, m, env)
		case *ast.CallExpr:
			st.checkCallArgs(pass, ev, m, env)
		}
		return true
	})
}

// checkDivisor reports divisors whose interval admits zero AND is finitely
// bounded on both sides. Top and half-open divisors are silent: a bare
// non-negativity seed ([0, +inf)) says almost nothing about the divisor's
// actual values, and flagging every division by a duration or an energy
// would drown the findings the domain genuinely proves.
func (st *rangeState) checkDivisor(pass *Pass, ev *absint.IntervalEval, div ast.Expr, at token.Pos, env *absint.Env[absint.Interval]) {
	iv := ev.Expr(div, env)
	if !iv.ContainsZero() || math.IsInf(iv.Lo, -1) || math.IsInf(iv.Hi, 1) {
		return
	}
	pass.Reportf(at, "divisor %s has range %s, which includes zero on some path; guard the division or tighten the range",
		render(div), iv)
}

// checkIndex reports indices provably outside the indexed table.
func (st *rangeState) checkIndex(pass *Pass, ev *absint.IntervalEval, ix *ast.IndexExpr, env *absint.Env[absint.Interval]) {
	tv, ok := pass.Pkg.Info.Types[ix.X]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Array:
	case *types.Pointer:
		if _, isArr := tv.Type.Underlying().(*types.Pointer).Elem().Underlying().(*types.Array); !isArr {
			return
		}
	default:
		return
	}
	idx := ev.Expr(ix.Index, env)
	if !idx.Known {
		return
	}
	if idx.Hi < 0 {
		pass.Reportf(ix.Index.Pos(), "index %s has range %s, which is negative on every path", render(ix.Index), idx)
		return
	}
	ln, ok := ev.LenOf(ix.X, env)
	if !ok || !ln.Known || math.IsInf(ln.Hi, 1) {
		return
	}
	if idx.Lo >= ln.Hi {
		pass.Reportf(ix.Index.Pos(), "index %s has range %s, but %s has at most %s elements; every path reads out of range",
			render(ix.Index), idx, render(ix.X), trimFloatStr(ln.Hi))
	}
}

// checkCallArgs reports definitely-negative arguments bound to parameters
// that carry a non-negative physical unit.
func (st *rangeState) checkCallArgs(pass *Pass, ev *absint.IntervalEval, call *ast.CallExpr, env *absint.Env[absint.Interval]) {
	obj := flow.CalleeObj(pass.Pkg.Info, call)
	if obj == nil || call.Ellipsis.IsValid() {
		return
	}
	sum := st.paramUnits[obj]
	if sum == nil {
		return
	}
	n := len(sum.params)
	if sum.variadic {
		n--
	}
	if len(call.Args) < n {
		n = len(call.Args)
	}
	for i := 0; i < n; i++ {
		if !nonNegUnit(sum.params[i]) {
			continue
		}
		iv := ev.Expr(call.Args[i], env)
		if !iv.DefinitelyNegative() {
			continue
		}
		pass.Reportf(call.Args[i].Pos(),
			"%s has range %s, which is negative on every path, but parameter %s of %s is a physical quantity (%s) that cannot be negative",
			render(call.Args[i]), iv, sum.pnames[i], obj.Name(), sum.params[i])
	}
}

// trimFloatStr renders a float bound compactly for messages.
func trimFloatStr(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
