package analysis

// lockcopy: copying a struct that contains a sync.Mutex forks the lock —
// two goroutines each locking their own copy exclude nobody, and the race
// only manifests under contention. The Lab and its sharded grid cache both
// embed mutexes, so a refactor that changes a pointer receiver to a value
// receiver, or ranges over a shard slice by value, compiles cleanly and
// corrupts the singleflight invariant. This check re-implements the core
// of vet's copylocks inside the suite so `make lint` stands alone.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockTypes are the sync types that must never be copied after first use.
var lockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Map": true, "Pool": true,
}

// LockCopyAnalyzer builds the lockcopy check.
func LockCopyAnalyzer() *Analyzer {
	return &Analyzer{
		Name:    "lockcopy",
		Doc:     "forbid copying values whose type transitively contains a sync lock",
		Applies: func(string) bool { return true },
		Run:     runLockCopy,
	}
}

func runLockCopy(pass *Pass) {
	for _, f := range pass.Pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFuncSig(pass, n.Recv, "receiver")
				checkFuncSig(pass, n.Type.Params, "parameter")
				checkFuncSig(pass, n.Type.Results, "result")
			case *ast.FuncLit:
				checkFuncSig(pass, n.Type.Params, "parameter")
				checkFuncSig(pass, n.Type.Results, "result")
			case *ast.AssignStmt:
				checkAssign(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, n)
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if copiesLock(pass, res) {
						pass.Reportf(res.Pos(), "return copies lock value: %s contains %s", render(res), lockPath(operandType(pass, res)))
					}
				}
			}
			return true
		})
	}
}

// checkFuncSig flags non-pointer lock-bearing types in a field list.
func checkFuncSig(pass *Pass, fields *ast.FieldList, role string) {
	if fields == nil {
		return
	}
	for _, field := range fields.List {
		tv, ok := pass.Pkg.Info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if name := lockPath(tv.Type); name != "" {
			pass.Reportf(field.Type.Pos(), "%s passes lock by value: type %s contains %s; use a pointer", role, tv.Type, name)
		}
	}
}

// checkAssign flags x = y and x := y where y is an existing value (not a
// fresh composite literal, call result, or address) of a lock-bearing type.
func checkAssign(pass *Pass, n *ast.AssignStmt) {
	if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
		return
	}
	for _, rhs := range n.Rhs {
		if copiesLock(pass, rhs) {
			pass.Reportf(rhs.Pos(), "assignment copies lock value: %s contains %s", render(rhs), lockPath(operandType(pass, rhs)))
		}
	}
}

// checkRange flags `for _, v := range xs` where v receives a lock-bearing
// element by value.
func checkRange(pass *Pass, n *ast.RangeStmt) {
	if n.Value == nil {
		return
	}
	id, ok := n.Value.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	t := operandType(pass, n.Value)
	if t == nil {
		if obj, ok := pass.Pkg.Info.Defs[id]; ok && obj != nil {
			t = obj.Type()
		}
	}
	if t == nil {
		return
	}
	if name := lockPath(t); name != "" {
		pass.Reportf(id.Pos(), "range copies lock value: %s receives a %s-bearing element by value; range over indices or pointers", id.Name, name)
	}
}

// copiesLock reports whether e denotes an existing addressable value of a
// lock-bearing type, i.e. evaluating it performs a forbidden copy.
func copiesLock(pass *Pass, e ast.Expr) bool {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return false // fresh values (literals, calls, &x) are initialization
	}
	t := operandType(pass, e)
	return t != nil && lockPath(t) != ""
}

// lockPath returns the name of the first sync lock type found inside t
// ("sync.Mutex"), or "" when t carries no lock by value. Pointers stop the
// search: sharing a pointer is the sanctioned way to share a lock.
func lockPath(t types.Type) string {
	return lockPathSeen(t, make(map[types.Type]bool))
}

func lockPathSeen(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypes[obj.Name()] {
			return "sync." + obj.Name()
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := lockPathSeen(u.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockPathSeen(u.Elem(), seen)
	}
	return ""
}
