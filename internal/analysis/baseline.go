package analysis

// Diagnostic baselines: record the current finding set so a later run can
// fail only on NEW findings. The CI lint job uses this to gate pull
// requests on the diagnostics they introduce, without a hand-rolled
// text diff of two runs.
//
// Matching is deliberately line-insensitive: a baseline entry is the
// multiset key (file, check, message) with a count. Inserting a line above
// an old finding moves it without changing what it says, and should not
// resurface it; adding a second identical finding to the same file is new
// and should fail, which the count preserves. Messages embed enough
// position-derived detail (witness sites render as base-file:line) that
// collisions across distinct findings stay rare, and a collision only ever
// errs toward suppression of a same-file same-message twin.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// baselineKey is the line-insensitive identity of a finding.
type baselineKey struct {
	File    string `json:"file"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// baselineEntry is one serialized multiset element.
type baselineEntry struct {
	baselineKey
	Count int `json:"count"`
}

// Baseline is a recorded finding multiset.
type Baseline struct {
	counts map[baselineKey]int
}

// NewBaseline builds the multiset for the given diagnostics.
func NewBaseline(diags []Diagnostic) *Baseline {
	b := &Baseline{counts: map[baselineKey]int{}}
	for _, d := range diags {
		b.counts[baselineKey{File: d.File, Check: d.Check, Message: d.Message}]++
	}
	return b
}

// WriteBaseline serializes the diagnostics as a baseline file: a sorted
// JSON array, so the file is stable across runs and diffs cleanly.
func WriteBaseline(w io.Writer, diags []Diagnostic) error {
	b := NewBaseline(diags)
	entries := make([]baselineEntry, 0, len(b.counts))
	for k, n := range b.counts {
		entries = append(entries, baselineEntry{baselineKey: k, Count: n})
	}
	sort.Slice(entries, func(i, j int) bool {
		a, c := entries[i], entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Check != c.Check {
			return a.Check < c.Check
		}
		return a.Message < c.Message
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(entries)
}

// ReadBaseline parses a baseline file.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	var entries []baselineEntry
	if err := json.NewDecoder(r).Decode(&entries); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	b := &Baseline{counts: map[baselineKey]int{}}
	for _, e := range entries {
		if e.Count <= 0 {
			e.Count = 1
		}
		b.counts[e.baselineKey] += e.Count
	}
	return b, nil
}

// Filter returns the diagnostics not covered by the baseline, in input
// order. Each baseline entry absorbs at most Count matching findings, so a
// newly duplicated finding still surfaces.
func (b *Baseline) Filter(diags []Diagnostic) []Diagnostic {
	remaining := make(map[baselineKey]int, len(b.counts))
	for k, n := range b.counts {
		remaining[k] = n
	}
	var out []Diagnostic
	for _, d := range diags {
		k := baselineKey{File: d.File, Check: d.Check, Message: d.Message}
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		out = append(out, d)
	}
	return out
}
