package analysis

// lockorder: the Lab's shard mutexes, the LRU's list lock, and the serve
// pool's admission lock are all held across calls into each other's
// packages, which is exactly how ABBA deadlocks are built — each site is
// locally reasonable and only the composition hangs. The check extracts a
// module-wide acquisition-order graph and reports every cycle with both
// acquisition sites, so the reviewer sees the two halves of the deadlock in
// one diagnostic.
//
// A lock class is the identity of the mutex *variable* (a struct field or a
// package/local var): every `s.mu.Lock()` across every method of a type
// resolves to the same field object, so order is tracked per declaration,
// not per textual expression. Within a function, a linear source-order scan
// maintains the held set: Lock/RLock pushes, Unlock/RUnlock pops,
// `defer mu.Unlock()` pins the lock as held to function exit, and a return
// drops what was not defer-pinned (branch-local locking does not leak into
// the rest of the scan). Calls into the module propagate: holding A across
// a call whose transitive summary acquires B adds the A→B edge at the call
// site. Function literals are scanned as their own units with an empty held
// set — when a closure runs is unknown, so inheriting the enclosing held
// set could invent cycles.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"mcdvfs/internal/analysis/flow"
)

// LockOrderAnalyzer builds the lockorder check.
func LockOrderAnalyzer() *Analyzer {
	return &Analyzer{
		Name:      "lockorder",
		Doc:       "mutex acquisition order must be acyclic across the module (ABBA deadlock detector)",
		Applies:   func(path string) bool { return strings.HasPrefix(path, "mcdvfs") },
		RunModule: runLockOrder,
	}
}

// lockEdge records "from was held when to was acquired", with both sites.
type lockEdge struct {
	from, to       *types.Var
	fromPos, toPos token.Pos
}

type lockOrderChecker struct {
	mp *ModulePass
	// summaries maps every module function to the set of lock classes it
	// (transitively) acquires.
	summaries map[*flow.Func]map[*types.Var]bool
	edges     []lockEdge
}

func runLockOrder(mp *ModulePass) {
	lo := &lockOrderChecker{mp: mp}
	lo.buildSummaries()
	scoped := map[*types.Package]bool{}
	for _, pkg := range mp.Pkgs {
		scoped[pkg.Types] = true
	}
	for _, fn := range mp.Prog.Funcs() {
		if !scoped[fn.Pkg.Types] {
			continue
		}
		lo.scanUnits(fn.Pkg.Info, fn.Decl.Body)
	}
	lo.reportCycles()
}

// buildSummaries computes each function's transitively acquired lock set:
// direct acquisitions, then a union fixpoint over static callees.
func (lo *lockOrderChecker) buildSummaries() {
	prog := lo.mp.Prog
	lo.summaries = map[*flow.Func]map[*types.Var]bool{}
	calls := map[*flow.Func][]*flow.Func{}
	for _, fn := range prog.Funcs() {
		acq := map[*types.Var]bool{}
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // runs at an unknown time; not this function's set
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if x, op, ok := flow.MutexOp(fn.Pkg.Info, call); ok && (op == "Lock" || op == "RLock") {
				if v := flow.LockClassOf(fn.Pkg.Info, x); v != nil {
					acq[v] = true
				}
			} else if callee := prog.Callee(fn.Pkg.Info, call); callee != nil {
				calls[fn] = append(calls[fn], callee)
			}
			return true
		})
		lo.summaries[fn] = acq
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range prog.Funcs() {
			sum := lo.summaries[fn]
			for _, callee := range calls[fn] {
				for v := range lo.summaries[callee] {
					if !sum[v] {
						sum[v] = true
						changed = true
					}
				}
			}
		}
	}
}

// scanUnits runs the held-set scan over a body, then over each nested
// literal as an independent unit.
func (lo *lockOrderChecker) scanUnits(info *types.Info, body *ast.BlockStmt) {
	var nested []*ast.FuncLit
	lo.scan(info, body, &nested)
	for i := 0; i < len(nested); i++ {
		lo.scan(info, nested[i].Body, &nested)
	}
}

// heldLock is one entry of the scan's held set.
type heldLock struct {
	v        *types.Var
	pos      token.Pos
	deferred bool // a defer mu.Unlock() pins it to function exit
}

// scan walks body in source order maintaining the held set and emitting
// edges. Nested literals are appended to nested, not descended into.
func (lo *lockOrderChecker) scan(info *types.Info, body *ast.BlockStmt, nested *[]*ast.FuncLit) {
	var held []heldLock
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			*nested = append(*nested, n)
			return false
		case *ast.DeferStmt:
			// defer mu.Unlock() pins; any other deferred call is not part of
			// this scan's order (it runs at exit).
			if x, op, ok := flow.MutexOp(info, n.Call); ok && (op == "Unlock" || op == "RUnlock") {
				if v := flow.LockClassOf(info, x); v != nil {
					for i := len(held) - 1; i >= 0; i-- {
						if held[i].v == v {
							held[i].deferred = true
							break
						}
					}
				}
			}
			return false
		case *ast.ReturnStmt:
			// A branch that returns holding only defer-pinned locks ends that
			// path; non-pinned entries must not leak into the code below.
			kept := held[:0]
			for _, h := range held {
				if h.deferred {
					kept = append(kept, h)
				}
			}
			held = kept
			return true
		case *ast.CallExpr:
			if x, op, ok := flow.MutexOp(info, n); ok {
				v := flow.LockClassOf(info, x)
				if v == nil {
					return true
				}
				switch op {
				case "Lock", "RLock":
					for _, h := range held {
						if h.v != v {
							lo.edges = append(lo.edges, lockEdge{from: h.v, to: v, fromPos: h.pos, toPos: n.Pos()})
						}
					}
					held = append(held, heldLock{v: v, pos: n.Pos()})
				case "Unlock", "RUnlock":
					for i := len(held) - 1; i >= 0; i-- {
						if held[i].v == v {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
				}
				return true
			}
			if len(held) > 0 {
				if callee := lo.mp.Prog.Callee(info, n); callee != nil {
					for v := range lo.summaries[callee] {
						for _, h := range held {
							if h.v != v {
								lo.edges = append(lo.edges, lockEdge{from: h.v, to: v, fromPos: h.pos, toPos: n.Pos()})
							}
						}
					}
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// reportCycles finds mutually ordered pairs in the edge set and reports
// each once, with both acquisition sites. Pairs (rather than full SCC
// enumeration) cover the ABBA shape the check exists for; a longer cycle
// always contains some function pair acquiring in both orders once
// summaries are transitive.
func (lo *lockOrderChecker) reportCycles() {
	type pair struct{ a, b *types.Var }
	first := map[pair]lockEdge{}
	for _, e := range lo.edges {
		k := pair{e.from, e.to}
		if old, ok := first[k]; !ok || e.toPos < old.toPos {
			first[k] = e
		}
	}
	var reports []lockEdge
	for k, e := range first {
		rev, ok := first[pair{k.b, k.a}]
		if !ok {
			continue
		}
		// Report the direction whose acquisition site sorts later, once per
		// unordered pair: the second half of the deadlock names the first.
		if e.toPos > rev.toPos || (e.toPos == rev.toPos && lo.classLess(k.b, k.a)) {
			reports = append(reports, e)
		}
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].toPos < reports[j].toPos })
	for _, e := range reports {
		rev := first[pair{e.to, e.from}]
		lo.mp.Reportf(e.toPos,
			"lock order cycle: %s acquired while holding %s (held since %s), but %s is acquired while holding %s at %s",
			lo.className(e.to), lo.className(e.from), lo.site(e.fromPos),
			lo.className(rev.to), lo.className(rev.from), lo.site(rev.toPos))
	}
}

func (lo *lockOrderChecker) classLess(a, b *types.Var) bool { return a.Pos() < b.Pos() }

// className renders a lock class as name(file:line of its declaration).
func (lo *lockOrderChecker) className(v *types.Var) string {
	return fmt.Sprintf("%s(%s)", v.Name(), lo.site(v.Pos()))
}

// site renders a position as base-file:line, stable across checkouts.
func (lo *lockOrderChecker) site(pos token.Pos) string {
	p := lo.mp.Prog.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
