package flow

// Every-path reachability: the query shape shared by the goleak and errflow
// checks. Starting from a node (a goroutine spawn, an error definition), an
// execution path is "satisfied" once it reaches a node for which ok reports
// true; it "fails" if it reaches the function exit — or a node for which bad
// reports true — while still unsatisfied. The checks ask for the universally
// quantified version: does EVERY path satisfy before failing?

import "go/ast"

// EveryPathHits reports whether every control-flow path starting immediately
// after `from` reaches a node satisfying ok before reaching the exit block or
// a node satisfying bad. A node satisfying both counts as ok (evaluation
// inside one statement happens before its own redefinition takes effect).
// bad may be nil. If from is not found in the graph, the result is false.
func EveryPathHits(c *CFG, from ast.Node, ok func(ast.Node) bool, bad func(ast.Node) bool) bool {
	startBlk, startIdx := c.find(from)
	if startBlk == nil {
		return false
	}
	// visited guards blocks entered at their top while unsatisfied; loops
	// revisiting such a block cannot produce a new outcome.
	visited := map[*Block]bool{}
	var walk func(blk *Block, idx int) bool
	walk = func(blk *Block, idx int) bool {
		for i := idx; i < len(blk.Nodes); i++ {
			n := blk.Nodes[i]
			if ok(n) {
				return true
			}
			if bad != nil && bad(n) {
				return false
			}
		}
		if blk == c.Exit {
			return false
		}
		if len(blk.Succs) == 0 {
			// A block that ends without successors (select{} with no cases)
			// never reaches exit: vacuously satisfied.
			return true
		}
		for _, s := range blk.Succs {
			if s == c.Exit {
				return false
			}
			if visited[s] {
				continue
			}
			visited[s] = true
			if !walk(s, 0) {
				return false
			}
		}
		return true
	}
	return walk(startBlk, startIdx+1)
}

// SomePathMisses is EveryPathHits negated, for readable call sites.
func SomePathMisses(c *CFG, from ast.Node, ok func(ast.Node) bool, bad func(ast.Node) bool) bool {
	return !EveryPathHits(c, from, ok, bad)
}

// find locates the block and in-block index of a node. Exact identity wins;
// only if the node is not itself a CFG node does containment resolve it to
// an enclosing node's slot (a call inside an assignment). The identity pass
// runs first because a statement in a range body is syntactically contained
// in the RangeStmt header node yet belongs to its own body block.
func (c *CFG) find(target ast.Node) (*Block, int) {
	for _, blk := range c.Blocks {
		for i, n := range blk.Nodes {
			if n == target {
				return blk, i
			}
		}
	}
	for _, blk := range c.Blocks {
		for i, n := range blk.Nodes {
			if _, isRange := n.(*ast.RangeStmt); isRange {
				continue // body statements have their own blocks
			}
			if contains(n, target) {
				return blk, i
			}
		}
	}
	return nil, 0
}

// HeaderExpr maps a CFG node to the subtree actually evaluated at its slot:
// for a RangeStmt header that is the range operand, for everything else the
// node itself. Checks inspecting node contents must use this so a range
// body is not double-scanned at the header.
func HeaderExpr(n ast.Node) ast.Node {
	if r, ok := n.(*ast.RangeStmt); ok {
		return r.X
	}
	return n
}

// contains reports whether inner occurs within the subtree of outer.
func contains(outer, inner ast.Node) bool {
	if outer == nil {
		return false
	}
	if inner.Pos() < outer.Pos() || inner.End() > outer.End() {
		return false
	}
	found := false
	ast.Inspect(outer, func(n ast.Node) bool {
		if n == inner {
			found = true
		}
		return !found
	})
	return found
}
