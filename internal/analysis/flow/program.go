package flow

// The module-wide function index. Interprocedural checks need two things
// beyond a single package's AST: every function declaration in the module
// (so a summary computed for sim.SimulateSample is visible from a call site
// in experiments), and static call-site resolution from an *ast.CallExpr to
// that declaration. Both only cover what can be resolved without pointer
// analysis: direct calls to package functions and methods with declared
// bodies. Calls through interface methods, function values, and out-of-module
// code resolve to nil, and callers must treat nil as "no information" — the
// propagation is sound for what it claims, silent about the rest.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// Package is the per-package view the Program indexes: the same shape the
// analysis driver loads, decoupled so flow has no import cycle with it.
type Package struct {
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Func is one declared function or method with a body.
type Func struct {
	// Obj is the *types.Func identity, shared across every package that
	// imports the declaring one.
	Obj *types.Func
	// Decl is the declaration; Decl.Body is non-nil.
	Decl *ast.FuncDecl
	// Pkg is the declaring package.
	Pkg *Package

	cfgOnce sync.Once
	cfg     *CFG
	duOnce  sync.Once
	du      *DefUse
}

// CFG returns the function's control-flow graph, built on first use.
func (f *Func) CFG() *CFG {
	f.cfgOnce.Do(func() { f.cfg = New(f.Decl) })
	return f.cfg
}

// DefUse returns the function's def-use chains, built on first use.
func (f *Func) DefUse() *DefUse {
	f.duOnce.Do(func() { f.du = BuildDefUse(f.CFG(), f.Pkg.Info) })
	return f.du
}

// Program indexes every function declaration across the loaded module
// packages.
type Program struct {
	Fset *token.FileSet
	// Pkgs is every indexed package, sorted by import path.
	Pkgs []*Package

	funcs map[*types.Func]*Func
	list  []*Func
}

// NewProgram indexes pkgs. The same *types.Func object resolved from any
// importing package maps back to its declaration.
func NewProgram(fset *token.FileSet, pkgs []*Package) *Program {
	p := &Program{Fset: fset, funcs: map[*types.Func]*Func{}}
	p.Pkgs = append(p.Pkgs, pkgs...)
	sort.Slice(p.Pkgs, func(i, j int) bool { return p.Pkgs[i].Path < p.Pkgs[j].Path })
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok || obj == nil {
					continue
				}
				fn := &Func{Obj: obj, Decl: fd, Pkg: pkg}
				p.funcs[obj] = fn
				p.list = append(p.list, fn)
			}
		}
	}
	return p
}

// Funcs returns every indexed function in deterministic (package path, then
// declaration) order.
func (p *Program) Funcs() []*Func { return p.list }

// FuncOf returns the indexed declaration for obj, or nil.
func (p *Program) FuncOf(obj *types.Func) *Func {
	if obj == nil {
		return nil
	}
	return p.funcs[obj]
}

// Callee statically resolves a call site against the index, using the
// type-check Info of the calling package. nil means the callee is dynamic
// (function value, interface method) or declared outside the module.
func (p *Program) Callee(info *types.Info, call *ast.CallExpr) *Func {
	return p.FuncOf(CalleeObj(info, call))
}

// CalleeObj resolves the *types.Func a call statically invokes, or nil.
func CalleeObj(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch fun := fun.(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// No Selection: a package-qualified call (pkg.F).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}
