package flow

// Golden tests: testdata/flowfix.go.src is parsed and type-checked, every
// function gets its CFG and def-use chains dumped, and the rendering is
// compared against testdata/{cfg,defuse}.golden. Regenerate with:
//
//	go test ./internal/analysis/flow -update

import (
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

func loadFixture(t *testing.T) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join("testdata", "flowfix.go.src"), nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("flowfix", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	return fset, f, info
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("dump differs from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

func TestCFGGolden(t *testing.T) {
	fset, f, _ := loadFixture(t)
	var b strings.Builder
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "func %s:\n%s\n", fd.Name.Name, New(fd).Dump(fset))
	}
	checkGolden(t, "cfg.golden", b.String())
}

func TestDefUseGolden(t *testing.T) {
	fset, f, info := loadFixture(t)
	var b strings.Builder
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		du := BuildDefUse(New(fd), info)
		fmt.Fprintf(&b, "func %s:\n%s\n", fd.Name.Name, du.Dump(fset))
	}
	checkGolden(t, "defuse.golden", b.String())
}

// fixtureFuncs indexes the fixture's declarations by name.
func fixtureFuncs(f *ast.File) map[string]*ast.FuncDecl {
	fns := map[string]*ast.FuncDecl{}
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			fns[fd.Name.Name] = fd
		}
	}
	return fns
}

// TestDefUseRangeLoop asserts the chains the nil-ness and interval domains
// rely on over a range loop: the key/value defs at the header reach the body
// uses, and the accumulator's body def flows around the back edge to itself.
func TestDefUseRangeLoop(t *testing.T) {
	fset, f, info := loadFixture(t)
	fd := fixtureFuncs(f)["RangeCaptures"]
	du := BuildDefUse(New(fd), info)

	byName := map[string][]*Def{}
	for _, d := range du.Defs {
		byName[d.Obj.Name()] = append(byName[d.Obj.Name()], d)
	}
	for _, name := range []string{"i", "v"} {
		defs := byName[name]
		if len(defs) != 1 {
			t.Fatalf("RangeCaptures: want 1 def of %s at the range header, got %d", name, len(defs))
		}
		if len(du.UsedBy[defs[0]]) == 0 {
			t.Errorf("RangeCaptures: range def of %s has no body uses", name)
		}
		if defs[0].Node == nil {
			t.Errorf("RangeCaptures: range def of %s should carry the RangeStmt node", name)
		} else if _, ok := defs[0].Node.(*ast.RangeStmt); !ok {
			t.Errorf("RangeCaptures: def of %s not attached to the RangeStmt, got %T", name, defs[0].Node)
		}
	}
	// sum has two defs (init, +=); the += def must reach its own use via the
	// back edge, and both defs must reach the return.
	sums := byName["sum"]
	if len(sums) != 2 {
		t.Fatalf("RangeCaptures: want 2 defs of sum, got %d", len(sums))
	}
	for _, d := range sums {
		found := false
		for _, use := range du.UsedBy[d] {
			if fset.Position(use.Pos()).Line > fset.Position(d.Pos).Line {
				found = true
			}
		}
		if !found {
			t.Errorf("RangeCaptures: def of sum at %v reaches no later use (return unreached)", fset.Position(d.Pos))
		}
	}
	bodyDef := sums[1]
	selfUse := false
	for _, use := range du.UsedBy[bodyDef] {
		if use.Pos() == bodyDef.Pos {
			selfUse = true // the += LHS reads the value flowing around the loop
		}
	}
	if !selfUse {
		t.Errorf("RangeCaptures: sum += def does not reach its own read through the back edge")
	}
}

// TestDefUseClosureCapture asserts the closure asymmetry: captured-variable
// reads inside a literal are uses of the outer defs, while defs inside the
// literal do not kill (or appear among) the outer function's defs.
func TestDefUseClosureCapture(t *testing.T) {
	fset, f, info := loadFixture(t)
	fd := fixtureFuncs(f)["ClosureCapture"]
	du := BuildDefUse(New(fd), info)

	var totalDef *Def
	for _, d := range du.Defs {
		if d.Obj.Name() == "total" {
			if totalDef != nil {
				t.Fatalf("ClosureCapture: total defined twice in the outer chain (closure def leaked): %v and %v",
					fset.Position(totalDef.Pos), fset.Position(d.Pos))
			}
			totalDef = d
		}
	}
	if totalDef == nil {
		t.Fatal("ClosureCapture: no def of total")
	}
	// total := n is used twice inside the literal (read at +=, read at return).
	uses := du.UsedBy[totalDef]
	if len(uses) < 2 {
		t.Fatalf("ClosureCapture: captured total should have its in-literal reads as uses, got %d", len(uses))
	}
	for _, u := range uses {
		if u.Pos() <= totalDef.Pos {
			t.Errorf("ClosureCapture: use at %v precedes the def", fset.Position(u.Pos()))
		}
	}
}

// TestEdgeKinds pins the true/false classification the interval domain
// refines on: an if header's then edge is EdgeTrue, its join/else edge is
// EdgeFalse, and a for header splits the same way.
func TestEdgeKinds(t *testing.T) {
	_, f, _ := loadFixture(t)
	fd := fixtureFuncs(f)["Loops"]
	cfg := New(fd)
	checked := 0
	for _, blk := range cfg.Blocks {
		if blk.Cond == nil {
			for _, k := range blk.SuccKinds {
				if k != EdgeNext {
					t.Errorf("%s: conditionless block has a %v edge", blk.Kind, k)
				}
			}
			continue
		}
		if len(blk.Succs) != 2 {
			t.Errorf("%s: cond block has %d successors, want 2", blk.Kind, len(blk.Succs))
			continue
		}
		if blk.SuccKinds[0] != EdgeTrue || blk.SuccKinds[1] != EdgeFalse {
			t.Errorf("%s: cond block edges are %v/%v, want EdgeTrue/EdgeFalse", blk.Kind, blk.SuccKinds[0], blk.SuccKinds[1])
		}
		if blk.Nodes[len(blk.Nodes)-1] != blk.Cond {
			t.Errorf("%s: Cond is not the block's final node", blk.Kind)
		}
		checked++
	}
	if checked < 3 {
		t.Errorf("Loops: expected at least 3 condition blocks, checked %d", checked)
	}
}

// TestDominators checks the dominance relation on Loops: the entry dominates
// everything reachable, the loop head dominates its body, and the body does
// not dominate the head (the head is reachable around it).
func TestDominators(t *testing.T) {
	_, f, _ := loadFixture(t)
	fd := fixtureFuncs(f)["Loops"]
	cfg := New(fd)
	dom := cfg.Dominators()

	var head, body *Block
	for _, blk := range cfg.Blocks {
		if blk.Kind == "for.head" && head == nil {
			head = blk
		}
		if blk.Kind == "for.body" && body == nil {
			body = blk
		}
	}
	if head == nil || body == nil {
		t.Fatal("Loops: missing for.head/for.body blocks")
	}
	for _, blk := range cfg.Blocks {
		if len(blk.Preds) == 0 && blk != cfg.Entry {
			continue // unreachable (none expected here, but keep the guard)
		}
		if !dom.Dominates(cfg.Entry, blk) {
			t.Errorf("entry does not dominate b%d %s", blk.Index, blk.Kind)
		}
	}
	if !dom.Dominates(head, body) {
		t.Error("for.head should dominate for.body")
	}
	if dom.Dominates(body, head) {
		t.Error("for.body must not dominate for.head")
	}
	if got := dom.Idom(cfg.Entry); got != nil {
		t.Errorf("entry's idom should be nil, got b%d", got.Index)
	}

	heads := cfg.LoopHeads()
	if !heads[head] {
		t.Error("for.head not identified as a loop head")
	}
	if heads[body] {
		t.Error("for.body wrongly identified as a loop head")
	}
	// Loops has two for loops: exactly two widening points.
	if len(heads) != 2 {
		t.Errorf("Loops: want 2 loop heads, got %d", len(heads))
	}
}

// TestEveryPathHits drives the path query against hand-picked spots in the
// fixture: the goroutine in Spawn is joined by the <-done receive on the
// only path to exit, while Reassigned's second err definition reaches
// return on every path without a use.
func TestEveryPathHits(t *testing.T) {
	_, f, info := loadFixture(t)
	fns := map[string]*ast.FuncDecl{}
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			fns[fd.Name.Name] = fd
		}
	}

	// Spawn: from the go statement, every path must pass the <-done receive.
	spawn := fns["Spawn"]
	var goStmt ast.Node
	ast.Inspect(spawn.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			goStmt = g
		}
		return true
	})
	recv := func(n ast.Node) bool {
		hit := false
		ast.Inspect(HeaderExpr(n), func(m ast.Node) bool {
			if u, ok := m.(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
				hit = true
			}
			return !hit
		})
		return hit
	}
	if !EveryPathHits(New(spawn), goStmt, recv, nil) {
		t.Errorf("Spawn: the <-done receive should satisfy every path from the go statement")
	}

	// Reassigned: the second definition of err is never used before return.
	re := fns["Reassigned"]
	du := BuildDefUse(New(re), info)
	var second *Def
	for _, d := range du.Defs {
		if d.Obj.Name() == "err" && d.Node != nil {
			if second == nil || d.Pos > second.Pos {
				second = d
			}
		}
	}
	if second == nil {
		t.Fatal("Reassigned: no err definition found")
	}
	if len(du.UsedBy[second]) != 0 {
		t.Errorf("Reassigned: second err def should have no uses, got %d", len(du.UsedBy[second]))
	}
	used := func(n ast.Node) bool {
		hit := false
		ast.Inspect(HeaderExpr(n), func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				for _, ds := range du.Uses[id] {
					if ds == second {
						hit = true
					}
				}
			}
			return !hit
		})
		return hit
	}
	if EveryPathHits(New(re), second.Node, used, nil) {
		t.Errorf("Reassigned: second err def must have an unused path to exit")
	}
}
