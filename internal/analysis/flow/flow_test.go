package flow

// Golden tests: testdata/flowfix.go.src is parsed and type-checked, every
// function gets its CFG and def-use chains dumped, and the rendering is
// compared against testdata/{cfg,defuse}.golden. Regenerate with:
//
//	go test ./internal/analysis/flow -update

import (
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

func loadFixture(t *testing.T) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join("testdata", "flowfix.go.src"), nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("flowfix", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	return fset, f, info
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("dump differs from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

func TestCFGGolden(t *testing.T) {
	fset, f, _ := loadFixture(t)
	var b strings.Builder
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "func %s:\n%s\n", fd.Name.Name, New(fd).Dump(fset))
	}
	checkGolden(t, "cfg.golden", b.String())
}

func TestDefUseGolden(t *testing.T) {
	fset, f, info := loadFixture(t)
	var b strings.Builder
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		du := BuildDefUse(New(fd), info)
		fmt.Fprintf(&b, "func %s:\n%s\n", fd.Name.Name, du.Dump(fset))
	}
	checkGolden(t, "defuse.golden", b.String())
}

// TestEveryPathHits drives the path query against hand-picked spots in the
// fixture: the goroutine in Spawn is joined by the <-done receive on the
// only path to exit, while Reassigned's second err definition reaches
// return on every path without a use.
func TestEveryPathHits(t *testing.T) {
	_, f, info := loadFixture(t)
	fns := map[string]*ast.FuncDecl{}
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			fns[fd.Name.Name] = fd
		}
	}

	// Spawn: from the go statement, every path must pass the <-done receive.
	spawn := fns["Spawn"]
	var goStmt ast.Node
	ast.Inspect(spawn.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			goStmt = g
		}
		return true
	})
	recv := func(n ast.Node) bool {
		hit := false
		ast.Inspect(HeaderExpr(n), func(m ast.Node) bool {
			if u, ok := m.(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
				hit = true
			}
			return !hit
		})
		return hit
	}
	if !EveryPathHits(New(spawn), goStmt, recv, nil) {
		t.Errorf("Spawn: the <-done receive should satisfy every path from the go statement")
	}

	// Reassigned: the second definition of err is never used before return.
	re := fns["Reassigned"]
	du := BuildDefUse(New(re), info)
	var second *Def
	for _, d := range du.Defs {
		if d.Obj.Name() == "err" && d.Node != nil {
			if second == nil || d.Pos > second.Pos {
				second = d
			}
		}
	}
	if second == nil {
		t.Fatal("Reassigned: no err definition found")
	}
	if len(du.UsedBy[second]) != 0 {
		t.Errorf("Reassigned: second err def should have no uses, got %d", len(du.UsedBy[second]))
	}
	used := func(n ast.Node) bool {
		hit := false
		ast.Inspect(HeaderExpr(n), func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				for _, ds := range du.Uses[id] {
					if ds == second {
						hit = true
					}
				}
			}
			return !hit
		})
		return hit
	}
	if EveryPathHits(New(re), second.Node, used, nil) {
		t.Errorf("Reassigned: second err def must have an unused path to exit")
	}
}
