package flow

// Lock-domination facts over the CFG: for every evaluated node of one
// function body, which sync.Mutex / sync.RWMutex classes are provably held
// — the substrate under the guardedby and spawnescape checks. "Provably"
// means a forward must-analysis: a lock is held at a point only when every
// CFG path from the entry to that point passes a Lock/RLock without a
// matching Unlock/RUnlock in between. The meet is therefore intersection,
// branches that lock on one arm only prove nothing at the join, and loops
// iterate to the (decreasing, finite) fixpoint.
//
// Lock identity is the class convention the lockorder check established:
// the *types.Var of the mutex variable — the field object for s.mu (shared
// by every method of the type), the var object for a package or local
// mutex. defer mu.Unlock() does not change the in-function state (it runs
// at exit); nested function literals are opaque, scanned by their callers
// as independent units with an empty entry state, because when a closure
// runs — and what its goroutine holds — is unknown here.

import (
	"go/ast"
	"go/types"
)

// LockMode distinguishes exclusive from shared acquisition.
type LockMode uint8

const (
	// LockWrite is a Lock() acquisition.
	LockWrite LockMode = iota + 1
	// LockRead is an RLock() acquisition.
	LockRead
)

// HeldSet maps each provably held lock class to its weakest mode on any
// path (a lock write-held on one path and read-held on another is only
// read-held here).
type HeldSet map[*types.Var]LockMode

// Has reports whether v is held in any mode.
func (h HeldSet) Has(v *types.Var) bool { _, ok := h[v]; return ok }

// LockStates holds the per-node must-held facts of one function body.
type LockStates struct {
	held map[ast.Node]HeldSet
}

// HeldAt returns the held set in force when n begins evaluating, or nil
// when n was not visited (a node inside a nested literal or defer body).
// The returned map is shared; callers must not mutate it.
func (ls *LockStates) HeldAt(n ast.Node) HeldSet { return ls.held[n] }

// MutexOp matches a call to a sync.Mutex/sync.RWMutex lock method,
// returning the receiver expression and the method name (Lock, Unlock,
// RLock, RUnlock).
func MutexOp(info *types.Info, call *ast.CallExpr) (ast.Expr, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, "", false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return nil, "", false
	}
	f, ok := s.Obj().(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// LockClassOf resolves a lock receiver expression to its variable
// identity: the field object for s.mu (shared by every method), the var
// object for a local or package mutex. nil means untracked (an element of
// a map, say). shards[i].mu unifies on the field by recursing through the
// index.
func LockClassOf(info *types.Info, x ast.Expr) *types.Var {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		if v, ok := info.Uses[x.Sel].(*types.Var); ok {
			return v
		}
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return v
		}
		if v, ok := info.Defs[x].(*types.Var); ok {
			return v
		}
	case *ast.IndexExpr:
		return LockClassOf(info, x.X)
	}
	return nil
}

// LockStatesOf runs the must-held analysis over c. The entry state is
// empty: callers that know more (a literal invoked in place) must account
// for it themselves.
func LockStatesOf(c *CFG, info *types.Info) *LockStates {
	ls := &LockStates{held: map[ast.Node]HeldSet{}}

	// Block-entry states. nil means "not yet computed" (⊤, the full set):
	// the optimistic initialization that makes loop fixpoints converge from
	// above. The entry block starts at ⊥ = empty.
	in := make([]HeldSet, len(c.Blocks))
	in[c.Entry.Index] = HeldSet{}

	// lockOp classifies a node as a tracked mutex operation.
	lockOp := func(m ast.Node) (*types.Var, string, bool) {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return nil, "", false
		}
		x, op, ok := MutexOp(info, call)
		if !ok {
			return nil, "", false
		}
		v := LockClassOf(info, x)
		if v == nil {
			return nil, "", false
		}
		return v, op, true
	}
	apply := func(h HeldSet, v *types.Var, op string) {
		switch op {
		case "Lock":
			h[v] = LockWrite
		case "RLock":
			if h[v] != LockWrite {
				h[v] = LockRead
			}
		case "Unlock", "RUnlock":
			delete(h, v)
		}
	}

	// transfer replays a block from state h, optionally recording per-node
	// snapshots, and returns the out state. h is not mutated. Recorded
	// snapshots are immutable: every mutex op replaces the working map with
	// a fresh clone, so nodes recorded earlier keep the state they saw.
	transfer := func(blk *Block, h HeldSet, record bool) HeldSet {
		snap := cloneHeld(h)
		for _, n := range blk.Nodes {
			walkEval(n, func(m ast.Node) bool {
				if record {
					ls.held[m] = snap // state before m evaluates
				}
				if v, op, ok := lockOp(m); ok {
					if record {
						next := cloneHeld(snap)
						apply(next, v, op)
						snap = next
					} else {
						apply(snap, v, op)
					}
				}
				return true
			})
		}
		return snap
	}

	// Fixpoint: iterate blocks in index order until stable. States only
	// shrink (meet is intersection against an optimistic ⊤), so this
	// terminates.
	for changed := true; changed; {
		changed = false
		for _, blk := range c.Blocks {
			if in[blk.Index] == nil {
				// Entered only once a predecessor produces a state.
				continue
			}
			out := transfer(blk, in[blk.Index], false)
			for _, s := range blk.Succs {
				if next := meetHeld(in[s.Index], out); !heldEqual(next, in[s.Index]) {
					in[s.Index] = next
					changed = true
				}
			}
		}
	}

	// Final recording pass with the converged entry states.
	for _, blk := range c.Blocks {
		if in[blk.Index] == nil {
			continue
		}
		transfer(blk, in[blk.Index], true)
	}
	return ls
}

// walkEval walks the subtree evaluated at a CFG node slot in evaluation
// (pre-)order, skipping regions that do not execute there: nested function
// literals (their bodies are independent units) and deferred calls (they
// run at function exit, so a defer mu.Unlock() leaves the in-function
// state alone). Range headers evaluate only their operand.
func walkEval(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(HeaderExpr(n), func(m ast.Node) bool {
		if m == nil {
			return true
		}
		switch d := m.(type) {
		case *ast.FuncLit:
			fn(d) // the literal value itself is evaluated here
			return false
		case *ast.DeferStmt:
			fn(d)
			return false
		}
		return fn(m)
	})
}

func cloneHeld(h HeldSet) HeldSet {
	out := make(HeldSet, len(h))
	for v, m := range h {
		out[v] = m
	}
	return out
}

// meetHeld intersects two states; nil (⊤) is the identity.
func meetHeld(a, b HeldSet) HeldSet {
	if a == nil {
		return cloneHeld(b)
	}
	out := make(HeldSet, len(a))
	for v, ma := range a {
		if mb, ok := b[v]; ok {
			// Weakest mode survives the meet.
			if ma == LockRead || mb == LockRead {
				out[v] = LockRead
			} else {
				out[v] = LockWrite
			}
		}
	}
	return out
}

func heldEqual(a, b HeldSet) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if len(a) != len(b) {
		return false
	}
	for v, m := range a {
		if b[v] != m {
			return false
		}
	}
	return true
}
