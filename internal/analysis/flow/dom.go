package flow

// Dominance over the CFG, in the Cooper–Harvey–Kennedy iterative style: small
// graphs, no Lengauer–Tarjan machinery. The abstract-interpretation engine
// uses it to find natural-loop heads (the widening points), and checks can
// ask "is this division dominated by its guard" directly.

// DomTree is the immediate-dominator tree of one CFG.
type DomTree struct {
	cfg *CFG
	// idom[i] is the index of block i's immediate dominator; the entry is
	// its own idom, and blocks unreachable from the entry (a synthetic exit
	// nothing returns to) get -1.
	idom []int
	// rpo[i] is block i's reverse-postorder number, -1 when unreachable.
	rpo []int
}

// Dominators computes the dominator tree. The CFG is not mutated; callers
// that need the tree repeatedly should keep the result.
func (c *CFG) Dominators() *DomTree {
	n := len(c.Blocks)
	d := &DomTree{cfg: c, idom: make([]int, n), rpo: make([]int, n)}
	for i := range d.idom {
		d.idom[i], d.rpo[i] = -1, -1
	}

	// Depth-first postorder from the entry, then reverse it.
	order := make([]*Block, 0, n)
	seen := make([]bool, n)
	var walk func(*Block)
	walk = func(blk *Block) {
		seen[blk.Index] = true
		for _, s := range blk.Succs {
			if !seen[s.Index] {
				walk(s)
			}
		}
		order = append(order, blk)
	}
	walk(c.Entry)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	for num, blk := range order {
		d.rpo[blk.Index] = num
	}

	intersect := func(a, b int) int {
		for a != b {
			for d.rpo[a] > d.rpo[b] {
				a = d.idom[a]
			}
			for d.rpo[b] > d.rpo[a] {
				b = d.idom[b]
			}
		}
		return a
	}

	d.idom[c.Entry.Index] = c.Entry.Index
	for changed := true; changed; {
		changed = false
		for _, blk := range order {
			if blk == c.Entry {
				continue
			}
			newIdom := -1
			for _, p := range blk.Preds {
				if d.idom[p.Index] == -1 {
					continue // predecessor not processed yet (or unreachable)
				}
				if newIdom == -1 {
					newIdom = p.Index
				} else {
					newIdom = intersect(newIdom, p.Index)
				}
			}
			if newIdom != -1 && d.idom[blk.Index] != newIdom {
				d.idom[blk.Index] = newIdom
				changed = true
			}
		}
	}
	return d
}

// Idom returns b's immediate dominator, or nil for the entry and for blocks
// unreachable from the entry.
func (d *DomTree) Idom(b *Block) *Block {
	i := d.idom[b.Index]
	if i == -1 || i == b.Index {
		return nil
	}
	return d.cfg.Blocks[i]
}

// Dominates reports whether a dominates b (reflexively: every block
// dominates itself). Unreachable blocks are dominated by nothing but
// themselves.
func (d *DomTree) Dominates(a, b *Block) bool {
	if a == b {
		return true
	}
	i := b.Index
	for d.idom[i] != -1 && d.idom[i] != i {
		i = d.idom[i]
		if i == a.Index {
			return true
		}
	}
	return false
}

// LoopHeads returns the heads of the CFG's natural loops: blocks that are the
// target of a back edge (an edge whose target dominates its source). These
// are exactly the points where an abstract interpreter must widen.
func (c *CFG) LoopHeads() map[*Block]bool {
	d := c.Dominators()
	heads := map[*Block]bool{}
	for _, blk := range c.Blocks {
		for _, s := range blk.Succs {
			if d.Dominates(s, blk) {
				heads[s] = true
			}
		}
	}
	return heads
}
