package flow

// Textual dumps of CFGs and def-use chains, consumed by the golden tests.
// The format is deliberately position-based (L<line>.<col>) so a golden file
// pins the exact shape of the graph against the fixture source.

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Dump renders the CFG, one block per line.
func (c *CFG) Dump(fset *token.FileSet) string {
	var b strings.Builder
	for _, blk := range c.Blocks {
		fmt.Fprintf(&b, "b%d %s:", blk.Index, blk.Kind)
		for _, n := range blk.Nodes {
			fmt.Fprintf(&b, " %s@L%d", nodeLabel(n), fset.Position(n.Pos()).Line)
		}
		if len(blk.Succs) > 0 {
			b.WriteString(" ->")
			for i, s := range blk.Succs {
				suffix := ""
				switch blk.SuccKinds[i] {
				case EdgeTrue:
					suffix = "(T)"
				case EdgeFalse:
					suffix = "(F)"
				}
				fmt.Fprintf(&b, " b%d%s", s.Index, suffix)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Dump renders every definition with the uses it reaches.
func (d *DefUse) Dump(fset *token.FileSet) string {
	defs := append([]*Def(nil), d.Defs...)
	sort.Slice(defs, func(i, j int) bool {
		if defs[i].Pos != defs[j].Pos {
			return defs[i].Pos < defs[j].Pos
		}
		return defs[i].Obj.Name() < defs[j].Obj.Name()
	})
	var b strings.Builder
	for _, def := range defs {
		p := fset.Position(def.Pos)
		kind := "def"
		if def.Node == nil {
			kind = "param"
		}
		fmt.Fprintf(&b, "%s %s@L%d.%d", kind, def.Obj.Name(), p.Line, p.Column)
		uses := append([]*ast.Ident(nil), d.UsedBy[def]...)
		sort.Slice(uses, func(i, j int) bool { return uses[i].Pos() < uses[j].Pos() })
		if len(uses) > 0 {
			b.WriteString(" -> uses")
			for _, u := range uses {
				up := fset.Position(u.Pos())
				fmt.Fprintf(&b, " L%d.%d", up.Line, up.Column)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// nodeLabel names a CFG node compactly: statements by their kind, lifted
// condition expressions as "cond".
func nodeLabel(n ast.Node) string {
	switch n := n.(type) {
	case *ast.AssignStmt:
		return "assign"
	case *ast.ReturnStmt:
		return "return"
	case *ast.ExprStmt:
		return "expr"
	case *ast.DeclStmt:
		return "decl"
	case *ast.IncDecStmt:
		return "incdec"
	case *ast.GoStmt:
		return "go"
	case *ast.DeferStmt:
		return "defer"
	case *ast.SendStmt:
		return "send"
	case *ast.RangeStmt:
		return "range"
	case *ast.BranchStmt:
		return strings.ToLower(n.Tok.String())
	case *ast.EmptyStmt:
		return "empty"
	case ast.Stmt:
		return strings.TrimSuffix(strings.TrimPrefix(fmt.Sprintf("%T", n), "*ast."), "Stmt")
	default:
		return "cond"
	}
}
