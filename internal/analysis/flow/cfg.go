// Package flow is the dataflow substrate under mcdvfsvet's interprocedural
// checks: per-function control-flow graphs built straight from go/ast (no
// x/tools, matching the suite's zero-dependency contract), reaching
// definitions with def-use chains over those CFGs, an every-path reachability
// query, and a module-wide function index that resolves static call sites so
// facts (unit summaries, lock acquisition sets, join obligations) can
// propagate across call boundaries.
//
// The CFG is deliberately SSA-lite. Blocks hold the original ast nodes in
// evaluation order — statements, plus loop/branch condition expressions,
// which occupy their own header slots so a use inside a condition is ordered
// correctly against the defs around it. Edges model Go's structured control
// flow (if/for/range/switch/type-switch/select, labeled break/continue,
// goto, fallthrough); return and calls to the panic builtin edge to a single
// synthetic exit block. That is exactly enough graph for the checks built on
// top: "does every path from this goroutine spawn pass a join", "does some
// path reach return without reading this error".
package flow

import (
	"go/ast"
	"go/token"
)

// EdgeKind classifies one outgoing CFG edge for condition-sensitive
// analyses. Most edges are EdgeNext; the two successors of a block that ends
// in a boolean condition (if header, for header) are EdgeTrue and EdgeFalse,
// which is what lets an abstract domain refine "x != 0" differently down the
// two arms.
type EdgeKind uint8

const (
	// EdgeNext is an unconditional (or unclassified) edge.
	EdgeNext EdgeKind = iota
	// EdgeTrue is taken when the block's Cond evaluates true.
	EdgeTrue
	// EdgeFalse is taken when the block's Cond evaluates false.
	EdgeFalse
)

// Block is one basic block: nodes that execute in sequence, then a branch.
type Block struct {
	// Index is the block's position in CFG.Blocks, assigned in creation
	// order with the synthetic exit always last.
	Index int
	// Kind names the construct that created the block ("entry", "exit",
	// "if.then", "for.head", ...) for dumps and debugging.
	Kind string
	// Nodes are the ast nodes evaluated in this block, in order. Statements
	// appear whole (a CallExpr inside an ExprStmt is found by inspection);
	// if/for/switch conditions appear as bare ast.Expr entries in their
	// header block.
	Nodes []ast.Node
	// Succs and Preds are the control-flow edges.
	Succs []*Block
	Preds []*Block
	// SuccKinds classifies each Succs entry; the two slices stay parallel.
	SuccKinds []EdgeKind
	// Cond is the boolean expression whose outcome selects between this
	// block's EdgeTrue and EdgeFalse successors, nil when the block ends
	// unconditionally. It is always also the last condition node in Nodes.
	Cond ast.Expr
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Fn is the *ast.FuncDecl or *ast.FuncLit the graph was built from.
	Fn ast.Node
	// Blocks lists every reachable block; Blocks[0] is the entry, the last
	// entry is the synthetic exit every return edges to.
	Blocks []*Block
	// Entry and Exit alias the first and last entries of Blocks.
	Entry, Exit *Block
}

// FuncBody returns the body of a FuncDecl or FuncLit, or nil.
func FuncBody(fn ast.Node) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// FuncType returns the signature of a FuncDecl or FuncLit, or nil.
func FuncType(fn ast.Node) *ast.FuncType {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Type
	case *ast.FuncLit:
		return fn.Type
	}
	return nil
}

// New builds the CFG for fn, which must be an *ast.FuncDecl or *ast.FuncLit
// with a non-nil body. Nested function literals are opaque: their bodies get
// their own CFGs, never edges into the enclosing one.
func New(fn ast.Node) *CFG {
	b := &builder{cfg: &CFG{Fn: fn}}
	entry := b.newBlock("entry")
	b.exit = &Block{Kind: "exit"} // appended (and indexed) in finish
	cur := b.stmtList(FuncBody(fn).List, entry)
	if cur != nil {
		b.edge(cur, b.exit) // fallthrough off the end is an implicit return
	}
	b.resolveGotos()
	return b.finish()
}

// builder carries the work-in-progress graph and the branch-target stacks.
type builder struct {
	cfg  *CFG
	exit *Block
	// targets is the stack of enclosing breakable/continuable constructs.
	targets []target
	// labels maps label names to their blocks for goto resolution; gotos
	// holds forward references.
	labels map[string]*Block
	gotos  []pendingGoto
	// curLabel is the label attached to the next loop/switch/select, so
	// `break L` and `continue L` resolve to the right construct.
	curLabel string
	// fallthroughTo is the next case block while building a switch clause.
	fallthroughTo *Block
}

type target struct {
	label          string
	breakTo        *Block // nil means break not applicable
	continueTo     *Block // nil for switch/select
	acceptsBreak   bool
	acceptsContinu bool
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	b.edgeKind(from, to, EdgeNext)
}

func (b *builder) edgeKind(from, to *Block, kind EdgeKind) {
	from.Succs = append(from.Succs, to)
	from.SuccKinds = append(from.SuccKinds, kind)
}

// stmtList threads a statement sequence through cur, returning the live-out
// block (nil when control cannot fall off the end).
func (b *builder) stmtList(list []ast.Stmt, cur *Block) *Block {
	for _, s := range list {
		if cur == nil {
			// Unreachable code after return/branch: still build it (a label
			// inside may be a goto target) from a fresh predecessor-less
			// block, which finish() prunes if it stays unreachable.
			cur = b.newBlock("unreachable")
		}
		cur = b.stmt(s, cur)
	}
	return cur
}

// stmt adds one statement to the graph, returning the block control flows
// out of, or nil when the statement never falls through.
func (b *builder) stmt(s ast.Stmt, cur *Block) *Block {
	label := b.curLabel
	b.curLabel = ""
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(s.List, cur)

	case *ast.LabeledStmt:
		// The labeled statement starts its own block so goto can target it.
		blk := b.newBlock("label." + s.Label.Name)
		b.edge(cur, blk)
		if b.labels == nil {
			b.labels = make(map[string]*Block)
		}
		b.labels[s.Label.Name] = blk
		b.curLabel = s.Label.Name
		return b.stmt(s.Stmt, blk)

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		b.edge(cur, b.exit)
		return nil

	case *ast.BranchStmt:
		return b.branch(s, cur)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		cur.Cond = s.Cond
		then := b.newBlock("if.then")
		b.edgeKind(cur, then, EdgeTrue)
		thenOut := b.stmtList(s.Body.List, then)
		var elseOut, elseIn *Block
		if s.Else != nil {
			elseIn = b.newBlock("if.else")
			b.edgeKind(cur, elseIn, EdgeFalse)
			elseOut = b.stmt(s.Else, elseIn)
		}
		if s.Else == nil {
			// No else: the false edge falls through to the join.
			join := b.newBlock("if.done")
			b.edgeKind(cur, join, EdgeFalse)
			if thenOut != nil {
				b.edge(thenOut, join)
			}
			return join
		}
		if thenOut == nil && elseOut == nil {
			return nil
		}
		join := b.newBlock("if.done")
		if thenOut != nil {
			b.edge(thenOut, join)
		}
		if elseOut != nil {
			b.edge(elseOut, join)
		}
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		head := b.newBlock("for.head")
		b.edge(cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			head.Cond = s.Cond
		}
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		if s.Cond != nil {
			b.edgeKind(head, body, EdgeTrue)
			b.edgeKind(head, done, EdgeFalse)
		} else {
			b.edge(head, body)
		}
		post := head
		if s.Post != nil {
			post = b.newBlock("for.post")
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
		}
		b.push(label, done, post)
		bodyOut := b.stmtList(s.Body.List, body)
		b.pop()
		if bodyOut != nil {
			b.edge(bodyOut, post)
		}
		return done

	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		// The RangeStmt node itself sits in the header: X is used there,
		// Key/Value are (re)defined there on each iteration.
		head.Nodes = append(head.Nodes, s)
		b.edge(cur, head)
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.edge(head, body)
		b.edge(head, done)
		b.push(label, done, head)
		bodyOut := b.stmtList(s.Body.List, body)
		b.pop()
		if bodyOut != nil {
			b.edge(bodyOut, head)
		}
		return done

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		if s.Tag != nil {
			cur.Nodes = append(cur.Nodes, s.Tag)
		}
		return b.switchBody(label, s.Body.List, cur, "switch")

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Assign)
		return b.switchBody(label, s.Body.List, cur, "typeswitch")

	case *ast.SelectStmt:
		return b.selectBody(label, s.Body.List, cur)

	default:
		// Plain statements: assignments, declarations, expression and send
		// statements, go, defer, inc/dec, empty. A call to the panic builtin
		// terminates the path.
		cur.Nodes = append(cur.Nodes, s)
		if isPanic(s) {
			b.edge(cur, b.exit)
			return nil
		}
		return cur
	}
}

// switchBody wires the case clauses of a switch or type switch.
func (b *builder) switchBody(label string, clauses []ast.Stmt, cur *Block, kind string) *Block {
	done := b.newBlock(kind + ".done")
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		blocks[i] = b.newBlock(kind + ".case")
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(cur, blocks[i])
	}
	if !hasDefault {
		b.edge(cur, done)
	}
	b.push(label, done, nil)
	prevFall := b.fallthroughTo
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		blk := blocks[i]
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, e)
		}
		b.fallthroughTo = nil
		if i+1 < len(clauses) {
			b.fallthroughTo = blocks[i+1]
		}
		out := b.stmtList(cc.Body, blk)
		if out != nil {
			b.edge(out, done)
		}
	}
	b.fallthroughTo = prevFall
	b.pop()
	return done
}

// selectBody wires a select statement: every comm clause is a successor of
// the header (an empty select, or one with no default, simply has fewer
// fall-through edges — a select with no cases blocks forever and gets none).
func (b *builder) selectBody(label string, clauses []ast.Stmt, cur *Block) *Block {
	done := b.newBlock("select.done")
	b.push(label, done, nil)
	for _, c := range clauses {
		cc := c.(*ast.CommClause)
		blk := b.newBlock("select.case")
		b.edge(cur, blk)
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
		}
		out := b.stmtList(cc.Body, blk)
		if out != nil {
			b.edge(out, done)
		}
	}
	b.pop()
	return done
}

// branch resolves break, continue, goto, and fallthrough.
func (b *builder) branch(s *ast.BranchStmt, cur *Block) *Block {
	cur.Nodes = append(cur.Nodes, s)
	name := ""
	if s.Label != nil {
		name = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.breakTo != nil && (name == "" || t.label == name) {
				b.edge(cur, t.breakTo)
				return nil
			}
		}
	case token.CONTINUE:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.continueTo != nil && (name == "" || t.label == name) {
				b.edge(cur, t.continueTo)
				return nil
			}
		}
	case token.GOTO:
		b.gotos = append(b.gotos, pendingGoto{from: cur, label: name})
		return nil
	case token.FALLTHROUGH:
		if b.fallthroughTo != nil {
			b.edge(cur, b.fallthroughTo)
		}
		return nil
	}
	return nil
}

func (b *builder) push(label string, breakTo, continueTo *Block) {
	b.targets = append(b.targets, target{label: label, breakTo: breakTo, continueTo: continueTo})
}

func (b *builder) pop() { b.targets = b.targets[:len(b.targets)-1] }

func (b *builder) resolveGotos() {
	for _, g := range b.gotos {
		if blk, ok := b.labels[g.label]; ok {
			b.edge(g.from, blk)
		}
	}
}

// isPanic reports whether s is a bare call to the panic builtin.
func isPanic(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// finish prunes blocks unreachable from the entry, appends the exit block,
// renumbers, and fills predecessor lists.
func (b *builder) finish() *CFG {
	c := b.cfg
	reach := map[*Block]bool{}
	var walk func(*Block)
	walk = func(blk *Block) {
		if reach[blk] {
			return
		}
		reach[blk] = true
		for _, s := range blk.Succs {
			walk(s)
		}
	}
	walk(c.Blocks[0])
	kept := c.Blocks[:0]
	for _, blk := range c.Blocks {
		if reach[blk] {
			kept = append(kept, blk)
		}
	}
	c.Blocks = append(kept, b.exit)
	for i, blk := range c.Blocks {
		blk.Index = i
		blk.Preds = nil
	}
	for _, blk := range c.Blocks {
		// Drop edges into pruned blocks (possible via break targets of
		// dead constructs), then fill preds. SuccKinds stays parallel.
		live := blk.Succs[:0]
		kinds := blk.SuccKinds[:0]
		for i, s := range blk.Succs {
			if reach[s] || s == b.exit {
				live = append(live, s)
				kinds = append(kinds, blk.SuccKinds[i])
			}
		}
		blk.Succs, blk.SuccKinds = live, kinds
	}
	for _, blk := range c.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	c.Entry = c.Blocks[0]
	c.Exit = b.exit
	return c
}
