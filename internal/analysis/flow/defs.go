package flow

// Reaching definitions and def-use chains over a CFG, for the local
// variables of one function (parameters, named results, and everything
// declared in the body). The analysis is a textbook forward union problem:
// gen/kill per block, iterate to a fixpoint, then one ordered walk per block
// pairs every use with the definitions that reach it.
//
// Nested function literals are treated asymmetrically on purpose: a *use*
// inside a closure counts at the closure's syntactic position (a captured
// error variable read by a deferred literal is still read), while a *def*
// inside a closure is ignored (when — or whether — it executes is unknowable
// here, and a phantom kill would hide real defs from the checks).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Def is one definition of a local variable.
type Def struct {
	// Obj is the variable being defined.
	Obj *types.Var
	// Ident is the defining occurrence (nil for implicit parameter and
	// named-result definitions at function entry).
	Ident *ast.Ident
	// Node is the CFG node the definition occurs in (nil at entry).
	Node ast.Node
	// Pos positions the definition for reports.
	Pos token.Pos
}

// DefUse holds the analysis results for one function.
type DefUse struct {
	CFG *CFG
	// Defs lists every definition in a stable (position) order.
	Defs []*Def
	// Uses maps each using identifier to the definitions reaching it.
	Uses map[*ast.Ident][]*Def
	// UsedBy inverts Uses: the identifiers each definition may flow to.
	UsedBy map[*Def][]*ast.Ident
}

// BuildDefUse runs reaching definitions over cfg. info must be the
// type-checked Info covering the function's file.
func BuildDefUse(cfg *CFG, info *types.Info) *DefUse {
	a := &duBuilder{
		cfg:    cfg,
		info:   info,
		du:     &DefUse{CFG: cfg, Uses: map[*ast.Ident][]*Def{}, UsedBy: map[*Def][]*ast.Ident{}},
		byNode: map[ast.Node][]*Def{},
	}
	a.collectLocals()
	a.collectDefs()
	a.solve()
	a.chain()
	return a.du
}

type duBuilder struct {
	cfg  *CFG
	info *types.Info
	du   *DefUse
	// locals are the variables under analysis.
	locals map[*types.Var]bool
	// byNode indexes defs by the CFG node containing them.
	byNode map[ast.Node][]*Def
	// entryDefs are parameter/result defs live at function entry.
	entryDefs []*Def
	// in/out are the block-level reaching sets.
	in, out map[*Block]defSet
}

type defSet map[*Def]bool

// collectLocals gathers every variable declared inside the function:
// parameters, named results, receivers, and body-scoped vars.
func (a *duBuilder) collectLocals() {
	a.locals = map[*types.Var]bool{}
	body := FuncBody(a.cfg.Fn)
	addField := func(fl *ast.FieldList, entry bool) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := a.info.Defs[name].(*types.Var); ok && v != nil {
					a.locals[v] = true
					if entry {
						d := &Def{Obj: v, Pos: name.Pos()}
						a.entryDefs = append(a.entryDefs, d)
						a.du.Defs = append(a.du.Defs, d)
					}
				}
			}
		}
	}
	if fd, ok := a.cfg.Fn.(*ast.FuncDecl); ok {
		addField(fd.Recv, true)
	}
	ft := FuncType(a.cfg.Fn)
	addField(ft.Params, true)
	addField(ft.Results, true)
	// Body-declared vars: every Ident the type checker recorded a *types.Var
	// definition for inside the body.
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := a.info.Defs[id].(*types.Var); ok && v != nil && !v.IsField() {
				a.locals[v] = true
			}
		}
		return true
	})
}

// collectDefs walks each block's nodes, recording definitions in order.
// A definition is a DEFINE/ASSIGN left-hand side, an op-assign, an inc/dec,
// a declaration with or without a value, or a range key/value.
func (a *duBuilder) collectDefs() {
	for _, blk := range a.cfg.Blocks {
		for _, n := range blk.Nodes {
			a.defsInNode(n, blk)
		}
	}
}

func (a *duBuilder) defsInNode(n ast.Node, blk *Block) {
	add := func(id *ast.Ident) {
		v := a.varOf(id)
		if v == nil {
			return
		}
		d := &Def{Obj: v, Ident: id, Node: n, Pos: id.Pos()}
		a.du.Defs = append(a.du.Defs, d)
		a.byNode[n] = append(a.byNode[n], d)
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				add(id)
			}
		}
	case *ast.IncDecStmt:
		if id, ok := n.X.(*ast.Ident); ok {
			add(id)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						if name.Name != "_" {
							add(name)
						}
					}
				}
			}
		}
	case *ast.RangeStmt:
		if id, ok := n.Key.(*ast.Ident); ok && id.Name != "_" {
			add(id)
		}
		if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
			add(id)
		}
	case *ast.TypeSwitchStmt:
		// handled via its Assign node placed in the header block
	case ast.Stmt:
		// Nested simple statements (if-init was lifted already; nothing else
		// defines).
	}
}

// varOf resolves an identifier to a tracked local, whether it defines
// (x := ...) or assigns (x = ...).
func (a *duBuilder) varOf(id *ast.Ident) *types.Var {
	if v, ok := a.info.Defs[id].(*types.Var); ok && v != nil && a.locals[v] {
		return v
	}
	if v, ok := a.info.Uses[id].(*types.Var); ok && v != nil && a.locals[v] {
		return v
	}
	return nil
}

// solve runs the forward union fixpoint.
func (a *duBuilder) solve() {
	a.in = map[*Block]defSet{}
	a.out = map[*Block]defSet{}
	gen := map[*Block]map[*types.Var]*Def{}   // last def per var in block
	kills := map[*Block]map[*types.Var]bool{} // vars redefined in block
	for _, blk := range a.cfg.Blocks {
		g := map[*types.Var]*Def{}
		k := map[*types.Var]bool{}
		for _, n := range blk.Nodes {
			for _, d := range a.byNode[n] {
				g[d.Obj] = d
				k[d.Obj] = true
			}
		}
		gen[blk], kills[blk] = g, k
		a.in[blk] = defSet{}
		a.out[blk] = defSet{}
	}
	for _, d := range a.entryDefs {
		a.in[a.cfg.Entry][d] = true
	}
	changed := true
	for changed {
		changed = false
		for _, blk := range a.cfg.Blocks {
			inSet := defSet{}
			if blk == a.cfg.Entry {
				for _, d := range a.entryDefs {
					inSet[d] = true
				}
			}
			for _, p := range blk.Preds {
				for d := range a.out[p] {
					inSet[d] = true
				}
			}
			outSet := defSet{}
			for d := range inSet {
				if !kills[blk][d.Obj] {
					outSet[d] = true
				}
			}
			for _, d := range gen[blk] {
				outSet[d] = true
			}
			if len(inSet) != len(a.in[blk]) || len(outSet) != len(a.out[blk]) {
				a.in[blk], a.out[blk] = inSet, outSet
				changed = true
			} else {
				a.in[blk], a.out[blk] = inSet, outSet
			}
		}
	}
}

// chain walks each block in order, pairing uses with the defs live at them.
func (a *duBuilder) chain() {
	for _, blk := range a.cfg.Blocks {
		// live: var -> reaching defs at the current point in the block.
		live := map[*types.Var][]*Def{}
		for d := range a.in[blk] {
			live[d.Obj] = append(live[d.Obj], d)
		}
		for _, n := range blk.Nodes {
			a.usesInNode(n, live)
			for _, d := range a.byNode[n] {
				live[d.Obj] = []*Def{d}
			}
		}
	}
}

// usesInNode records every use of a tracked local inside n against the live
// defs. The defining identifiers themselves are not uses; an op-assign or
// inc/dec both uses and defines, which works out because uses are recorded
// against the incoming defs before the node's own defs overwrite them.
func (a *duBuilder) usesInNode(n ast.Node, live map[*types.Var][]*Def) {
	defIdents := map[*ast.Ident]bool{}
	for _, d := range a.byNode[n] {
		if d.Ident != nil {
			// A plain `x = ...` LHS is a pure def; `x += ...` and `x++` read
			// first, so their LHS ident stays a use as well.
			pure := true
			switch s := n.(type) {
			case *ast.AssignStmt:
				pure = s.Tok == token.ASSIGN || s.Tok == token.DEFINE
			case *ast.IncDecStmt:
				pure = false // x++ reads x first
			}
			if pure {
				defIdents[d.Ident] = true
			}
		}
	}
	// A RangeStmt node lives in its header block but syntactically contains
	// the loop body, whose statements are CFG nodes of their own — restrict
	// the walk to the range operand.
	if r, ok := n.(*ast.RangeStmt); ok {
		n = r.X
	}
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		if defIdents[id] {
			return true
		}
		v, ok := a.info.Uses[id].(*types.Var)
		if !ok || v == nil || !a.locals[v] {
			return true
		}
		ds := live[v]
		if len(ds) == 0 {
			return true
		}
		a.du.Uses[id] = append(a.du.Uses[id], ds...)
		for _, d := range ds {
			a.du.UsedBy[d] = append(a.du.UsedBy[d], id)
		}
		return true
	})
}
