package analysis

// contract: declarative physical-envelope contracts proven by the interval
// interpreter. Three doc-comment annotations form the surface:
//
//	//vet:requires <expr>   (function doc) — assumed at entry, proven at
//	                        every module-static call site;
//	//vet:ensures <expr>    (function doc) — proven on every return path
//	                        under the requires assumptions;
//	//vet:invariant <expr>  (struct type doc) — assumed wherever a field of
//	                        the type is read, re-proven at the exit of every
//	                        method that writes an invariant field.
//
// <expr> is a conjunction of comparisons over parameters, results ("ret"
// names the single non-error result), receiver fields, and numeric literals:
//
//	expr := cmp { "&&" cmp }
//	cmp  := operand ("<" | "<=" | ">" | ">=" | "==" | "!=") operand
//	operand := number | ident { "." ident }
//
// Verification reuses rangecheck's whole substrate — the OPP envelope, the
// unit seeds, and the two-round function summaries — and feeds back into it:
// an `ensures ret >= 0` tightens the callee's summary, which sharpens every
// caller's intervals for rangecheck and for other contracts.
//
// Obligations follow two different standards on purpose. An `ensures` is an
// opt-in claim by the annotated function, so it is strict: a return path
// where the fact cannot be proven is a finding even when the interval is
// top. A `requires` obligation at a call site runs on the domain's evidence
// semantics: only an argument the analysis KNOWS something about can fail —
// a top argument is silent, because flagging every unannotated caller would
// bury the provable violations (the same reasoning behind rangecheck's
// silent-top divisors). Malformed annotations — unknown verbs, unparsable
// expressions, contract verbs in the wrong place — are diagnostics, never
// silently ignored.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"math"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"mcdvfs/internal/analysis/absint"
	"mcdvfs/internal/analysis/flow"
)

// contractVerbs are the recognized //vet: annotation verbs across the whole
// suite; anything else starting with //vet: is a typo worth a diagnostic.
var contractVerbs = map[string]bool{
	"hotpath": true, "owned": true, "transfer": true,
	"requires": true, "ensures": true, "invariant": true,
}

// cOperand is one side of a comparison: a literal or a dotted path.
type cOperand struct {
	isConst bool
	val     float64
	path    []string
}

func (o cOperand) String() string {
	if o.isConst {
		return trimFloatStr(o.val)
	}
	return strings.Join(o.path, ".")
}

func (o cOperand) root() string {
	if o.isConst || len(o.path) == 0 {
		return ""
	}
	return o.path[0]
}

// conjunct is one comparison of a contract expression, normalized so a
// constant side (if any) sits on the right.
type conjunct struct {
	lhs, rhs cOperand
	op       token.Token
}

func (c conjunct) String() string {
	return c.lhs.String() + " " + c.op.String() + " " + c.rhs.String()
}

// annot is one //vet:requires / ensures / invariant comment, parsed.
type annot struct {
	pos   token.Pos
	kind  string // "requires" | "ensures" | "invariant"
	expr  string // expression text as written
	conjs []conjunct
}

// funcContract aggregates a function's annotations.
type funcContract struct {
	requires []annot
	ensures  []annot
	// params are the callee's parameter names in order, for matching bare
	// requires conjuncts against call arguments; recvName is the receiver's
	// name for conjuncts over a scalar receiver.
	params   []string
	recvName string
}

func (fc *funcContract) reqConjs() []conjunct {
	var out []conjunct
	for _, a := range fc.requires {
		out = append(out, a.conjs...)
	}
	return out
}

func (fc *funcContract) ensConjs() []conjunct {
	var out []conjunct
	for _, a := range fc.ensures {
		out = append(out, a.conjs...)
	}
	return out
}

// contractIssue is a malformed or misplaced annotation, reported by the
// contract check in the package that contains it.
type contractIssue struct {
	pos     token.Pos
	pkgPath string
	msg     string
}

// contractIndex is the module-wide contract table, built once in Prepare and
// read-only afterwards.
type contractIndex struct {
	funcs   map[*types.Func]*funcContract
	typeInv map[*types.TypeName][]annot
	issues  []contractIssue
	// inventory lists every well-formed annotation for -contracts.
	inventory []Contract
}

// Contract is one well-formed annotation, as listed by mcdvfsvet -contracts.
type Contract struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Col    int    `json:"col"`
	Kind   string `json:"kind"`   // requires | ensures | invariant
	Target string `json:"target"` // annotated function or type
	Expr   string `json:"expr"`
}

// parseContractExpr parses the conjunction grammar. The returned conjuncts
// are normalized (constant on the right); a nil error means every conjunct
// parsed.
func parseContractExpr(s string) ([]conjunct, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("missing expression")
	}
	var out []conjunct
	for _, part := range strings.Split(s, "&&") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("empty conjunct")
		}
		c, err := parseConjunct(part)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

func parseConjunct(s string) (conjunct, error) {
	ops := []struct {
		text string
		tok  token.Token
	}{
		{"<=", token.LEQ}, {">=", token.GEQ}, {"==", token.EQL},
		{"!=", token.NEQ}, {"<", token.LSS}, {">", token.GTR},
	}
	at, opLen := -1, 0
	var opTok token.Token
	for _, op := range ops {
		if i := strings.Index(s, op.text); i >= 0 && (at < 0 || i < at || (i == at && len(op.text) > opLen)) {
			at, opLen, opTok = i, len(op.text), op.tok
		}
	}
	if at < 0 {
		return conjunct{}, fmt.Errorf("%q has no comparison operator", s)
	}
	lhsText, rhsText := strings.TrimSpace(s[:at]), strings.TrimSpace(s[at+opLen:])
	if strings.ContainsAny(rhsText, "<>=!") {
		return conjunct{}, fmt.Errorf("%q has more than one comparison operator", s)
	}
	lhs, err := parseOperand(lhsText)
	if err != nil {
		return conjunct{}, err
	}
	rhs, err := parseOperand(rhsText)
	if err != nil {
		return conjunct{}, err
	}
	if lhs.isConst && rhs.isConst {
		return conjunct{}, fmt.Errorf("%q compares two constants", s)
	}
	if lhs.isConst {
		lhs, rhs, opTok = rhs, lhs, swapCmpTok(opTok)
	}
	return conjunct{lhs: lhs, rhs: rhs, op: opTok}, nil
}

func parseOperand(s string) (cOperand, error) {
	if s == "" {
		return cOperand{}, fmt.Errorf("missing operand")
	}
	if c := s[0]; c == '-' || c == '.' || (c >= '0' && c <= '9') {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return cOperand{}, fmt.Errorf("%q is not a number", s)
		}
		return cOperand{isConst: true, val: v}, nil
	}
	parts := strings.Split(s, ".")
	for _, p := range parts {
		if !isGoIdent(p) {
			return cOperand{}, fmt.Errorf("%q is not an identifier path", s)
		}
	}
	return cOperand{path: parts}, nil
}

func isGoIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func swapCmpTok(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op // ==, != are symmetric
}

func unparenExpr(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func negCmpTok(op token.Token) token.Token {
	switch op {
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	}
	return token.ILLEGAL
}

// collectContracts builds the module-wide contract index: every function and
// struct annotation parsed and semantically validated, every malformed or
// misplaced //vet: comment recorded as an issue.
func collectContracts(prog *flow.Program) *contractIndex {
	ix := &contractIndex{
		funcs:   map[*types.Func]*funcContract{},
		typeInv: map[*types.TypeName][]annot{},
	}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			consumed := map[*ast.Comment]bool{}
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					ix.collectFunc(prog.Fset, pkg, d, consumed)
				case *ast.GenDecl:
					if d.Tok == token.TYPE {
						ix.collectType(prog.Fset, pkg, d, consumed)
					}
				}
			}
			// Anything //vet:-shaped not consumed above: unknown verbs
			// anywhere, contract verbs outside the doc position they bind to.
			// hotpath/owned/transfer are line-positioned marks owned by their
			// own checks and legal anywhere.
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					verb, _, ok := vetVerb(c.Text)
					if !ok || consumed[c] {
						continue
					}
					switch verb {
					case "hotpath", "owned", "transfer":
					case "requires", "ensures":
						ix.issue(pkg, c.Pos(), "//vet:%s must be in a function's doc comment", verb)
					case "invariant":
						ix.issue(pkg, c.Pos(), "//vet:invariant must be in a struct type's doc comment")
					default:
						ix.issue(pkg, c.Pos(), "unknown //vet: verb %q (known: ensures, hotpath, invariant, owned, requires, transfer)", verb)
					}
				}
			}
		}
	}
	sort.Slice(ix.inventory, func(i, j int) bool {
		a, b := ix.inventory[i], ix.inventory[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return ix
}

// vetVerb splits a //vet: comment into verb and rest.
func vetVerb(text string) (verb, rest string, ok bool) {
	const prefix = "//vet:"
	if !strings.HasPrefix(text, prefix) {
		return "", "", false
	}
	s := strings.TrimPrefix(text, prefix)
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		return s[:i], strings.TrimSpace(s[i:]), true
	}
	return s, "", true
}

func (ix *contractIndex) issue(pkg *flow.Package, pos token.Pos, format string, args ...any) {
	ix.issues = append(ix.issues, contractIssue{
		pos: pos, pkgPath: pkg.Path, msg: fmt.Sprintf(format, args...),
	})
}

func (ix *contractIndex) collectFunc(fset *token.FileSet, pkg *flow.Package, fd *ast.FuncDecl, consumed map[*ast.Comment]bool) {
	if fd.Doc == nil {
		return
	}
	obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	for _, c := range fd.Doc.List {
		verb, rest, ok := vetVerb(c.Text)
		if !ok || (verb != "requires" && verb != "ensures") {
			continue
		}
		consumed[c] = true
		if obj == nil {
			continue
		}
		conjs, err := parseContractExpr(rest)
		if err != nil {
			ix.issue(pkg, c.Pos(), "malformed //vet:%s annotation: %v", verb, err)
			continue
		}
		sc := newFuncScope(obj, fd)
		bad := false
		for _, cj := range conjs {
			for _, side := range []cOperand{cj.lhs, cj.rhs} {
				if msg := sc.validateRoot(side, verb); msg != "" {
					ix.issue(pkg, c.Pos(), "malformed //vet:%s annotation: %s", verb, msg)
					bad = true
				}
			}
		}
		if bad {
			continue
		}
		fc := ix.funcs[obj]
		if fc == nil {
			fc = &funcContract{params: sc.paramNames, recvName: sc.recv}
			ix.funcs[obj] = fc
		}
		a := annot{pos: c.Pos(), kind: verb, expr: rest, conjs: conjs}
		if verb == "requires" {
			fc.requires = append(fc.requires, a)
		} else {
			fc.ensures = append(fc.ensures, a)
		}
		ix.addInventory(fset, c.Pos(), verb, obj.FullName(), rest)
	}
}

func (ix *contractIndex) collectType(fset *token.FileSet, pkg *flow.Package, gd *ast.GenDecl, consumed map[*ast.Comment]bool) {
	docs := []*ast.CommentGroup{gd.Doc}
	specs := make([]*ast.TypeSpec, 0, len(gd.Specs))
	for _, s := range gd.Specs {
		if ts, ok := s.(*ast.TypeSpec); ok {
			specs = append(specs, ts)
			docs = append(docs, ts.Doc)
		}
	}
	for di, doc := range docs {
		if doc == nil {
			continue
		}
		// The GenDecl doc binds to a sole spec; a spec doc binds to its spec.
		var ts *ast.TypeSpec
		if di == 0 {
			if len(specs) == 1 {
				ts = specs[0]
			}
		} else {
			ts = specs[di-1]
		}
		for _, c := range doc.List {
			verb, rest, ok := vetVerb(c.Text)
			if !ok || verb != "invariant" {
				continue
			}
			consumed[c] = true
			if ts == nil {
				ix.issue(pkg, c.Pos(), "//vet:invariant on a grouped type declaration must document one type")
				continue
			}
			st, isStruct := ts.Type.(*ast.StructType)
			if !isStruct {
				ix.issue(pkg, c.Pos(), "//vet:invariant applies only to struct types")
				continue
			}
			tn, _ := pkg.Info.Defs[ts.Name].(*types.TypeName)
			if tn == nil {
				continue
			}
			conjs, err := parseContractExpr(rest)
			if err != nil {
				ix.issue(pkg, c.Pos(), "malformed //vet:invariant annotation: %v", err)
				continue
			}
			fields := map[string]bool{}
			for _, fl := range st.Fields.List {
				for _, name := range fl.Names {
					fields[name.Name] = true
				}
			}
			bad := false
			for _, cj := range conjs {
				for _, side := range []cOperand{cj.lhs, cj.rhs} {
					if root := side.root(); root != "" && !fields[root] {
						ix.issue(pkg, c.Pos(), "malformed //vet:invariant annotation: %q is not a field of %s", root, ts.Name.Name)
						bad = true
					}
				}
			}
			if bad {
				continue
			}
			ix.typeInv[tn] = append(ix.typeInv[tn], annot{pos: c.Pos(), kind: verb, expr: rest, conjs: conjs})
			ix.addInventory(fset, c.Pos(), verb, tn.Pkg().Path()+"."+tn.Name(), rest)
		}
	}
}

func (ix *contractIndex) addInventory(fset *token.FileSet, pos token.Pos, kind, target, expr string) {
	p := fset.Position(pos)
	ix.inventory = append(ix.inventory, Contract{
		File: p.Filename, Line: p.Line, Col: p.Column,
		Kind: kind, Target: target, Expr: expr,
	})
}

// funcScope resolves contract identifiers against one function's signature.
type funcScope struct {
	sig        *types.Signature
	recv       string
	paramNames []string
	params     map[string]*types.Var
	results    map[string]*types.Var
	resultIdx  map[string]int
	// retIdx/retVar identify the single non-error result "ret" names;
	// retIdx is -1 when absent or ambiguous.
	retIdx int
	retVar *types.Var
}

func newFuncScope(obj *types.Func, fd *ast.FuncDecl) *funcScope {
	sig := obj.Type().(*types.Signature)
	sc := &funcScope{
		sig:       sig,
		params:    map[string]*types.Var{},
		results:   map[string]*types.Var{},
		resultIdx: map[string]int{}, retIdx: -1,
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		sc.recv = fd.Recv.List[0].Names[0].Name
		if sc.recv != "" && sc.recv != "_" && sig.Recv() != nil {
			// A scalar named-type receiver (MHz) is a value like any
			// parameter; contracts may constrain it bare.
			sc.params[sc.recv] = sig.Recv()
		}
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		sc.paramNames = append(sc.paramNames, p.Name())
		if p.Name() != "" && p.Name() != "_" {
			sc.params[p.Name()] = p
		}
	}
	for i := 0; i < sig.Results().Len(); i++ {
		r := sig.Results().At(i)
		if r.Name() != "" && r.Name() != "_" {
			sc.results[r.Name()] = r
			sc.resultIdx[r.Name()] = i
		}
		if r.Type().String() == "error" {
			continue
		}
		if sc.retIdx >= 0 {
			sc.retIdx = -2 // two non-error results: "ret" is ambiguous
			continue
		}
		sc.retIdx, sc.retVar = i, r
	}
	if sc.retIdx == -2 {
		sc.retIdx, sc.retVar = -1, nil
	}
	return sc
}

// validateRoot reports (as a message, "" when fine) an operand whose root
// does not resolve in this function's scope for the given verb.
func (sc *funcScope) validateRoot(o cOperand, verb string) string {
	root := o.root()
	if root == "" {
		return ""
	}
	if _, ok := sc.params[root]; ok {
		return ""
	}
	if root == sc.recv && len(o.path) > 1 {
		return ""
	}
	if verb == "ensures" {
		if root == "ret" {
			if sc.retIdx < 0 {
				return `"ret" needs exactly one non-error result`
			}
			return ""
		}
		if _, ok := sc.results[root]; ok {
			return ""
		}
		return fmt.Sprintf("%q is not a parameter, result, or receiver field path", root)
	}
	return fmt.Sprintf("%q is not a parameter or receiver field path", root)
}

// entryEnv seeds a function's entry environment with its requires conjuncts
// and its receiver type's invariants, intersected with the physics seeds the
// evaluator would otherwise give.
func (ix *contractIndex) entryEnv(obj *types.Func, fd *ast.FuncDecl, ev *absint.IntervalEval) *absint.Env[absint.Interval] {
	env := absint.NewEnv[absint.Interval]()
	if ix == nil {
		return env
	}
	sc := newFuncScope(obj, fd)
	if sc.recv != "" {
		if tn := recvTypeName(sc.sig); tn != nil {
			for _, a := range ix.typeInv[tn] {
				for _, cj := range a.conjs {
					ix.seedConjunct(cj, sc.recv, sc, env, ev)
				}
			}
		}
	}
	if fc := ix.funcs[obj]; fc != nil {
		for _, cj := range fc.reqConjs() {
			ix.seedConjunct(cj, "", sc, env, ev)
		}
	}
	return env
}

// seedConjunct folds one path-vs-const conjunct into env. recvPrefix, when
// non-empty, prefixes bare field paths (invariant conjuncts are written in
// field terms but live under the receiver name). Path-vs-path conjuncts are
// relational and cannot be seeded absolutely; they still participate in
// proving.
func (ix *contractIndex) seedConjunct(cj conjunct, recvPrefix string, sc *funcScope, env *absint.Env[absint.Interval], ev *absint.IntervalEval) {
	if cj.rhs.isConst == false {
		return
	}
	bound := absint.Exact(cj.rhs.val)
	path := cj.lhs.path
	if recvPrefix != "" {
		path = append([]string{recvPrefix}, path...)
	}
	if len(path) == 1 {
		v, ok := sc.params[path[0]]
		if !ok {
			return
		}
		cur, okc := env.Var(v)
		if !okc {
			cur = absint.Range(math.Inf(-1), math.Inf(1))
			if ev.VarSeed != nil {
				if iv, oks := ev.VarSeed(v); oks {
					cur = iv
				}
			}
		}
		nv := absint.ApplyCmp(cur, cj.op, bound, isIntType(v.Type()))
		if nv.Known {
			env.Vars[v] = nv
		}
		return
	}
	key := strings.Join(path, ".")
	cur, okc := env.Path(key)
	if !okc {
		cur = absint.Range(math.Inf(-1), math.Inf(1))
	}
	integer := false
	if root, ok := sc.params[path[0]]; ok {
		integer = isIntFieldPath(root.Type(), path[1:])
	} else if path[0] == recvPrefix && sc.sig.Recv() != nil {
		integer = isIntFieldPath(sc.sig.Recv().Type(), path[1:])
	}
	nv := absint.ApplyCmp(cur, cj.op, bound, integer)
	if nv.Known {
		env.Paths[key] = nv
	}
}

// recvTypeName resolves a method receiver to its named type, through one
// pointer if present.
func recvTypeName(sig *types.Signature) *types.TypeName {
	if sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

func isIntType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

func isUnsignedType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsUnsigned != 0
}

// isIntFieldPath walks a dotted field chain from a root type.
func isIntFieldPath(t types.Type, fields []string) bool {
	for _, f := range fields {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return false
		}
		found := false
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == f {
				t, found = st.Field(i).Type(), true
				break
			}
		}
		if !found {
			return false
		}
	}
	return isIntType(t)
}

// invariantFieldSeed is rangecheck's PathSeed extension: a selector whose
// base type carries a //vet:invariant inherits the conjuncts over that
// field, intersected with any unit seed.
func (ix *contractIndex) invariantFieldSeed(info *types.Info, sel *ast.SelectorExpr, unit absint.Interval, unitOK bool) (absint.Interval, bool) {
	if ix == nil {
		return unit, unitOK
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return unit, unitOK
	}
	t := tv.Type
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return unit, unitOK
	}
	annots := ix.typeInv[named.Obj()]
	if len(annots) == 0 {
		return unit, unitOK
	}
	cur, curOK := unit, unitOK
	for _, a := range annots {
		for _, cj := range a.conjs {
			if !cj.rhs.isConst || len(cj.lhs.path) != 1 || cj.lhs.path[0] != sel.Sel.Name {
				continue
			}
			base := cur
			if !curOK {
				base = absint.Range(math.Inf(-1), math.Inf(1))
			}
			nv := absint.ApplyCmp(base, cj.op, absint.Exact(cj.rhs.val), false)
			if nv.Known {
				cur, curOK = nv, true
			}
		}
	}
	return cur, curOK
}

// proves reports whether every (l, r) value pair admitted by the intervals
// satisfies l op r.
func proves(l, r absint.Interval, op token.Token) bool {
	if !l.Known || !r.Known {
		return false
	}
	exactZeroR := r.Lo == 0 && r.Hi == 0 //lint:allow floateq exact-zero bound test mirrors the NonZero refinement
	switch op {
	case token.LSS:
		return l.Hi < r.Lo || (exactZeroR && l.NonZero && l.Hi <= 0)
	case token.LEQ:
		return l.Hi <= r.Lo
	case token.GTR:
		return l.Lo > r.Hi || (exactZeroR && l.NonZero && l.Lo >= 0)
	case token.GEQ:
		return l.Lo >= r.Hi
	case token.EQL:
		return l.Lo == l.Hi && r.Lo == r.Hi && l.Lo == r.Lo //lint:allow floateq singleton-interval equality is the only provable ==
	case token.NEQ:
		return l.Hi < r.Lo || l.Lo > r.Hi || (exactZeroR && l.NonZero)
	}
	return false
}

// violates reports whether NO admitted value pair satisfies l op r.
func violates(l, r absint.Interval, op token.Token) bool {
	return proves(l, r, negCmpTok(op))
}

// contractState is the analyzer: it owns a private rangeState so Prepare
// reuses the OPP envelope, the unit seeds, and the (ensures-refined)
// function summaries without coupling the two analyzers' lifecycles.
type contractState struct {
	rs *rangeState
}

// ContractAnalyzer builds the contract analyzer.
func ContractAnalyzer() *Analyzer {
	st := &contractState{rs: &rangeState{}}
	return &Analyzer{
		Name:    "contract",
		Doc:     "//vet:requires / //vet:ensures / //vet:invariant contracts proven by interval analysis: ensures on every return path, requires at every static call site, invariants across mutating methods",
		Applies: rangeApplies,
		Prepare: st.prepare,
		Run:     st.run,
	}
}

func (st *contractState) prepare(prog *flow.Program) {
	st.rs.prepare(prog)
}

func (st *contractState) run(pass *Pass) {
	if !pass.IncludeSrc {
		return
	}
	ix := st.rs.contracts
	if ix == nil {
		return
	}
	for _, iss := range ix.issues {
		if iss.pkgPath == pass.Pkg.Path {
			pass.Reportf(iss.pos, "%s", iss.msg)
		}
	}
	info := pass.Pkg.Info
	ev := st.rs.newEval(info, st.rs.summaries)
	for _, f := range pass.Pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			st.checkFunc(pass, ev, fd)
		}
	}
}

// checkFunc discharges one function's obligations: its own ensures at every
// return, its callees' requires at every call, and its receiver's invariant
// at exit when the body writes invariant fields.
func (st *contractState) checkFunc(pass *Pass, ev *absint.IntervalEval, fd *ast.FuncDecl) {
	obj, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return
	}
	ix := st.rs.contracts
	fc := ix.funcs[obj]
	sc := newFuncScope(obj, fd)

	var invConjs []conjunct
	var invTypeName string
	if sc.recv != "" {
		if tn := recvTypeName(sc.sig); tn != nil && len(ix.typeInv[tn]) > 0 {
			written := receiverFieldWrites(pass.Pkg.Info, fd, sc.recv)
			if len(written) > 0 {
				invTypeName = tn.Name()
				for _, a := range ix.typeInv[tn] {
					for _, cj := range a.conjs {
						if written[cj.lhs.root()] || written[cj.rhs.root()] {
							invConjs = append(invConjs, cj)
						}
					}
				}
			}
		}
	}

	var cfg *flow.CFG
	if fn := pass.Prog.FuncOf(obj); fn != nil {
		cfg = fn.CFG()
	} else {
		cfg = flow.New(fd)
	}
	it := ev.Interp()
	envs := it.Analyze(cfg, ix.entryEnv(obj, fd, ev))

	for _, blk := range cfg.Blocks {
		entry := envs[blk]
		if entry == nil {
			continue
		}
		it.Walk(blk, entry, func(n ast.Node, env *absint.Env[absint.Interval]) {
			if ret, ok := n.(*ast.ReturnStmt); ok && fc != nil {
				st.checkEnsures(pass, ev, fc, sc, ret, env)
			}
			st.checkCallRequires(pass, it, ev, flow.HeaderExpr(n), env)
		})
	}

	if len(invConjs) > 0 {
		if exitEnv := envs[cfg.Exit]; exitEnv != nil {
			st.checkInvariantExit(pass, fd, sc, invTypeName, invConjs, exitEnv)
		}
	}
}

// receiverFieldWrites collects the root field names the body assigns through
// the receiver (c.f = ..., c.f += ..., c.f++, c.sub.g = ... roots at "sub").
func receiverFieldWrites(info *types.Info, fd *ast.FuncDecl, recv string) map[string]bool {
	written := map[string]bool{}
	record := func(e ast.Expr) {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
				continue
			case *ast.IndexExpr:
				e = x.X
				continue
			case *ast.StarExpr:
				e = x.X
				continue
			}
			break
		}
		// Walk the selector chain down to its root identifier.
		var chain []string
		for {
			if sel, ok := e.(*ast.SelectorExpr); ok {
				chain = append(chain, sel.Sel.Name)
				e = sel.X
				if p, ok := e.(*ast.ParenExpr); ok {
					e = p.X
				}
				if s, ok := e.(*ast.StarExpr); ok {
					e = s.X
				}
				if ix, ok := e.(*ast.IndexExpr); ok {
					e = ix.X
				}
				continue
			}
			break
		}
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != recv || len(chain) == 0 {
			return
		}
		written[chain[len(chain)-1]] = true
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				record(l)
			}
		case *ast.IncDecStmt:
			record(n.X)
		}
		return true
	})
	return written
}

// checkEnsures proves every ensures conjunct at one return statement.
func (st *contractState) checkEnsures(pass *Pass, ev *absint.IntervalEval, fc *funcContract, sc *funcScope, ret *ast.ReturnStmt, env *absint.Env[absint.Interval]) {
	for _, cj := range fc.ensConjs() {
		l := st.operandAtReturn(cj.lhs, ret, sc, ev, env)
		r := st.operandAtReturn(cj.rhs, ret, sc, ev, env)
		if proves(l, r, cj.op) {
			continue
		}
		show, iv := cj.lhs.String(), l
		if cj.lhs.isConst {
			show, iv = cj.rhs.String(), r
		}
		if violates(l, r, cj.op) {
			pass.Reportf(ret.Pos(), "return violates ensures %q: %s has range %s", cj.String(), show, iv)
		} else {
			pass.Reportf(ret.Pos(), "cannot prove ensures %q on this return path: %s has range %s", cj.String(), show, iv)
		}
	}
}

// operandAtReturn evaluates one conjunct side at a return site: constants
// are themselves, "ret"/named results read the returned expression (or the
// named result variable on bare returns), parameters and dotted paths read
// the environment with the physics seeds as fallback.
func (st *contractState) operandAtReturn(o cOperand, ret *ast.ReturnStmt, sc *funcScope, ev *absint.IntervalEval, env *absint.Env[absint.Interval]) absint.Interval {
	if o.isConst {
		return absint.Exact(o.val)
	}
	if len(o.path) == 1 {
		name := o.path[0]
		idx, rv := -1, (*types.Var)(nil)
		if name == "ret" && sc.retIdx >= 0 {
			idx, rv = sc.retIdx, sc.retVar
		} else if i, ok := sc.resultIdx[name]; ok {
			idx, rv = i, sc.results[name]
		}
		if idx >= 0 {
			if len(ret.Results) == sc.sig.Results().Len() && idx < len(ret.Results) {
				return ev.Expr(ret.Results[idx], env)
			}
			if len(ret.Results) == 0 && rv != nil {
				if iv, ok := env.Var(rv); ok {
					return iv
				}
			}
			return absint.Top()
		}
		if v, ok := sc.params[name]; ok {
			if iv, ok := env.Var(v); ok {
				return iv
			}
			if ev.VarSeed != nil {
				if iv, ok := ev.VarSeed(v); ok {
					return iv
				}
			}
		}
		return absint.Top()
	}
	if iv, ok := env.Path(strings.Join(o.path, ".")); ok {
		return iv
	}
	return absint.Top()
}

// checkCallRequires discharges callee requires obligations inside one CFG
// node. Only bare-parameter conjuncts with a constant bound are checkable at
// a call site (dotted conjuncts are entry assumptions of the callee), and
// only arguments the analysis holds a fact about can fail.
func (st *contractState) checkCallRequires(pass *Pass, it *absint.Interp[absint.Interval], ev *absint.IntervalEval, n ast.Node, env *absint.Env[absint.Interval]) {
	if n == nil {
		return
	}
	ix := st.rs.contracts
	absint.CondWalk(it, n, env, func(m ast.Node, env *absint.Env[absint.Interval]) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok || call.Ellipsis.IsValid() {
			return true
		}
		obj := flow.CalleeObj(pass.Pkg.Info, call)
		if obj == nil {
			return true
		}
		fc := ix.funcs[obj]
		if fc == nil || len(fc.requires) == 0 {
			return true
		}
		argIdx := map[string]int{}
		for i, name := range fc.params {
			argIdx[name] = i
		}
		for _, cj := range fc.reqConjs() {
			if !cj.rhs.isConst || len(cj.lhs.path) != 1 {
				continue
			}
			var arg ast.Expr
			if fc.recvName != "" && cj.lhs.path[0] == fc.recvName {
				// A conjunct over a scalar receiver binds to the method's
				// base expression (x in x.PeriodNS()).
				if sel, isSel := unparenExpr(call.Fun).(*ast.SelectorExpr); isSel {
					arg = sel.X
				}
			} else if i, ok := argIdx[cj.lhs.path[0]]; ok && i < len(call.Args) {
				arg = call.Args[i]
			}
			if arg == nil {
				continue
			}
			iv := ev.Expr(arg, env)
			if !iv.Known {
				continue // evidence semantics: no fact, no finding
			}
			r := absint.Exact(cj.rhs.val)
			if proves(iv, r, cj.op) {
				continue
			}
			if violates(iv, r, cj.op) {
				pass.Reportf(arg.Pos(), "argument %s violates requires %q of %s (range %s)",
					render(arg), cj.String(), obj.Name(), iv)
			} else {
				pass.Reportf(arg.Pos(), "cannot prove requires %q of %s: argument %s has range %s",
					cj.String(), obj.Name(), render(arg), iv)
			}
		}
		return true
	})
}

// checkInvariantExit re-proves the invariant conjuncts over written fields
// in the joined environment flowing into the method's exit.
func (st *contractState) checkInvariantExit(pass *Pass, fd *ast.FuncDecl, sc *funcScope, typeName string, conjs []conjunct, env *absint.Env[absint.Interval]) {
	for _, cj := range conjs {
		if !cj.rhs.isConst {
			continue
		}
		key := sc.recv + "." + strings.Join(cj.lhs.path, ".")
		l, ok := env.Path(key)
		if !ok {
			l = absint.Top()
		}
		r := absint.Exact(cj.rhs.val)
		if proves(l, r, cj.op) {
			continue
		}
		if violates(l, r, cj.op) {
			pass.Reportf(fd.Body.Rbrace, "method %s violates invariant %q of %s: %s has range %s at exit",
				fd.Name.Name, cj.String(), typeName, cj.lhs.String(), l)
		} else {
			pass.Reportf(fd.Body.Rbrace, "method %s writes %s but cannot re-prove invariant %q of %s at exit (range %s)",
				fd.Name.Name, cj.lhs.String(), cj.String(), typeName, l)
		}
	}
}

// ListContracts loads the matched packages and returns every well-formed
// contract annotation they contain, the -contracts inventory. Malformed
// annotations are diagnostics of a normal run, not inventory entries.
func ListContracts(opts Options) ([]Contract, error) {
	dir := opts.Dir
	if dir == "" {
		dir = "."
	}
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	patterns := opts.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	resolved := make([]string, len(patterns))
	for i, p := range patterns {
		if filepath.IsAbs(p) {
			resolved[i] = p
		} else {
			resolved[i] = filepath.Join(dir, p)
		}
	}
	dirs, err := loader.Expand(resolved)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("analysis: no packages match %v", opts.Patterns)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	pkgs := make([]*Package, len(dirs))
	loadErrs := make([]error, len(dirs))
	forEach(len(dirs), workers, func(i int) {
		pkgs[i], loadErrs[i] = loader.LoadDir(dirs[i])
	})
	for _, err := range loadErrs {
		if err != nil {
			return nil, err
		}
	}
	matched := map[string]bool{}
	var fpkgs []*flow.Package
	for _, p := range pkgs {
		matched[p.Path] = true
	}
	for _, p := range loader.Loaded() {
		if matched[p.Path] {
			fpkgs = append(fpkgs, &flow.Package{Path: p.Path, Files: p.Syntax, Types: p.Types, Info: p.Info})
		}
	}
	prog := flow.NewProgram(loader.Fset, fpkgs)
	ix := collectContracts(prog)
	out := ix.inventory
	if out == nil {
		out = []Contract{}
	}
	return out, nil
}

// RelContractsTo rewrites inventory file paths relative to base, like RelTo.
func RelContractsTo(cs []Contract, base string) {
	for i := range cs {
		if rel, err := filepath.Rel(base, cs[i].File); err == nil && !filepath.IsAbs(rel) {
			cs[i].File = filepath.ToSlash(rel)
		}
	}
}
