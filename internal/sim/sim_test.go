package sim

import (
	"math"
	"testing"

	"mcdvfs/internal/freq"
	"mcdvfs/internal/workload"
)

// system returns a noiseless system so model-property tests see exact
// behaviour; noise-specific tests build their own.
func system(t *testing.T) *System {
	t.Helper()
	s, err := New(NoiselessConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestMeasurementNoiseDeterministicAndBounded(t *testing.T) {
	noisy, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	clean := system(t)
	spec := memBoundSpec()
	spec.Index = 17
	st := freq.Setting{CPU: 700, Mem: 500}
	a, _ := noisy.SimulateSample(spec, st)
	b, _ := noisy.SimulateSample(spec, st)
	if a != b {
		t.Error("noisy simulation not deterministic")
	}
	c, _ := clean.SimulateSample(spec, st)
	rel := math.Abs(a.TimeNS-c.TimeNS) / c.TimeNS
	if rel > 0.05 {
		t.Errorf("noise perturbed time by %v, want small", rel)
	}
	if a.TimeNS == c.TimeNS {
		t.Error("noise had no effect")
	}
	// Different settings draw different noise.
	d, _ := noisy.SimulateSample(spec, freq.Setting{CPU: 700, Mem: 600})
	cleanD, _ := clean.SimulateSample(spec, freq.Setting{CPU: 700, Mem: 600})
	if a.TimeNS/c.TimeNS == d.TimeNS/cleanD.TimeNS {
		t.Error("noise factors identical across settings")
	}
}

func TestNewRejectsBadNoise(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MeasurementNoise = -0.1
	if _, err := New(cfg); err == nil {
		t.Error("negative noise accepted")
	}
	cfg.MeasurementNoise = 0.5
	if _, err := New(cfg); err == nil {
		t.Error("huge noise accepted")
	}
}

func cpuBoundSpec() workload.SampleSpec {
	return workload.SampleSpec{
		Instructions: workload.SampleLen,
		BaseCPI:      0.9, MPKI: 0.5, RowHitRate: 0.7, MLP: 1.8, WriteFrac: 0.3,
	}
}

func memBoundSpec() workload.SampleSpec {
	return workload.SampleSpec{
		Instructions: workload.SampleLen,
		BaseCPI:      0.8, MPKI: 28, RowHitRate: 0.88, MLP: 3.5, WriteFrac: 0.45,
	}
}

func TestSimulateSampleBasics(t *testing.T) {
	s := system(t)
	smp, err := s.SimulateSample(cpuBoundSpec(), freq.Setting{CPU: 1000, Mem: 800})
	if err != nil {
		t.Fatalf("SimulateSample: %v", err)
	}
	if smp.TimeNS <= 0 || smp.CPUEnergyJ <= 0 || smp.MemEnergyJ <= 0 {
		t.Errorf("non-positive outputs: %+v", smp)
	}
	if smp.CPI < 0.9 {
		t.Errorf("achieved CPI %v below base CPI", smp.CPI)
	}
	if smp.Activity <= 0 || smp.Activity > 1 {
		t.Errorf("activity %v outside (0,1]", smp.Activity)
	}
	if smp.EnergyJ() != smp.CPUEnergyJ+smp.MemEnergyJ {
		t.Error("EnergyJ mismatch")
	}
}

func TestCPUBoundSpeedupTracksCPUFreq(t *testing.T) {
	s := system(t)
	spec := cpuBoundSpec()
	t1000, _ := s.SimulateSample(spec, freq.Setting{CPU: 1000, Mem: 800})
	t500, _ := s.SimulateSample(spec, freq.Setting{CPU: 500, Mem: 800})
	ratio := t500.TimeNS / t1000.TimeNS
	if ratio < 1.8 || ratio > 2.1 {
		t.Errorf("CPU-bound time ratio at half frequency = %v, want ~2", ratio)
	}
	// Memory frequency must barely matter (paper: bzip2 within 3% from
	// 200 MHz to 800 MHz memory at 1000 MHz CPU).
	m800, _ := s.SimulateSample(spec, freq.Setting{CPU: 1000, Mem: 800})
	m200, _ := s.SimulateSample(spec, freq.Setting{CPU: 1000, Mem: 200})
	if slow := m200.TimeNS / m800.TimeNS; slow > 1.03 {
		t.Errorf("CPU-bound workload slowed %vx by memory frequency, want <= 1.03", slow)
	}
}

func TestMemBoundSpeedupTracksMemFreq(t *testing.T) {
	s := system(t)
	spec := memBoundSpec()
	m800, _ := s.SimulateSample(spec, freq.Setting{CPU: 1000, Mem: 800})
	m200, _ := s.SimulateSample(spec, freq.Setting{CPU: 1000, Mem: 200})
	if ratio := m200.TimeNS / m800.TimeNS; ratio < 1.5 {
		t.Errorf("memory-bound slowdown at 200MHz memory = %v, want >= 1.5", ratio)
	}
	// CPU frequency must matter less than it does for the CPU-bound case.
	c1000, _ := s.SimulateSample(spec, freq.Setting{CPU: 1000, Mem: 800})
	c500, _ := s.SimulateSample(spec, freq.Setting{CPU: 500, Mem: 800})
	memBoundCPURatio := c500.TimeNS / c1000.TimeNS
	b1000, _ := s.SimulateSample(cpuBoundSpec(), freq.Setting{CPU: 1000, Mem: 800})
	b500, _ := s.SimulateSample(cpuBoundSpec(), freq.Setting{CPU: 500, Mem: 800})
	cpuBoundCPURatio := b500.TimeNS / b1000.TimeNS
	if memBoundCPURatio >= cpuBoundCPURatio {
		t.Errorf("memory-bound CPU sensitivity %v not below CPU-bound %v",
			memBoundCPURatio, cpuBoundCPURatio)
	}
}

func TestTimeMonotoneInEachKnob(t *testing.T) {
	s := system(t)
	for _, spec := range []workload.SampleSpec{cpuBoundSpec(), memBoundSpec()} {
		prev := math.Inf(1)
		for _, fc := range freq.Ladder(100, 1000, 100) {
			smp, err := s.SimulateSample(spec, freq.Setting{CPU: fc, Mem: 400})
			if err != nil {
				t.Fatalf("SimulateSample: %v", err)
			}
			if smp.TimeNS >= prev {
				t.Errorf("time not decreasing in CPU freq at %v (MPKI %v)", fc, spec.MPKI)
			}
			prev = smp.TimeNS
		}
		prev = math.Inf(1)
		for _, fm := range freq.Ladder(200, 800, 100) {
			smp, err := s.SimulateSample(spec, freq.Setting{CPU: 600, Mem: fm})
			if err != nil {
				t.Fatalf("SimulateSample: %v", err)
			}
			if smp.TimeNS > prev+1e-6 {
				t.Errorf("time increasing in mem freq at %v (MPKI %v)", fm, spec.MPKI)
			}
			prev = smp.TimeNS
		}
	}
}

func TestStallsInflateCPIAtHighCPUFreq(t *testing.T) {
	s := system(t)
	spec := memBoundSpec()
	lo, _ := s.SimulateSample(spec, freq.Setting{CPU: 100, Mem: 400})
	hi, _ := s.SimulateSample(spec, freq.Setting{CPU: 1000, Mem: 400})
	if hi.CPI <= lo.CPI {
		t.Errorf("memory-bound CPI at 1000MHz (%v) should exceed CPI at 100MHz (%v)", hi.CPI, lo.CPI)
	}
	if hi.Activity >= lo.Activity {
		t.Errorf("activity should drop at high CPU freq: %v vs %v", hi.Activity, lo.Activity)
	}
}

func TestSimulateRun(t *testing.T) {
	s := system(t)
	specs := workload.MustByName("gobmk").MustRealize()[:10]
	samples, err := s.SimulateRun(specs, freq.Setting{CPU: 800, Mem: 600})
	if err != nil {
		t.Fatalf("SimulateRun: %v", err)
	}
	if len(samples) != 10 {
		t.Fatalf("got %d samples", len(samples))
	}
	timeNS, energyJ := Totals(samples)
	if timeNS <= 0 || energyJ <= 0 {
		t.Errorf("totals non-positive: %v, %v", timeNS, energyJ)
	}
}

func TestSimulateSampleErrors(t *testing.T) {
	s := system(t)
	if _, err := s.SimulateSample(workload.SampleSpec{}, freq.Setting{CPU: 500, Mem: 400}); err == nil {
		t.Error("zero-instruction spec accepted")
	}
	bad := cpuBoundSpec()
	bad.BaseCPI = 0
	if _, err := s.SimulateSample(bad, freq.Setting{CPU: 500, Mem: 400}); err == nil {
		t.Error("zero CPI accepted")
	}
	if _, err := s.SimulateSample(cpuBoundSpec(), freq.Setting{CPU: 5000, Mem: 400}); err == nil {
		t.Error("out-of-range CPU frequency accepted")
	}
	if _, err := s.SimulateSample(cpuBoundSpec(), freq.Setting{CPU: 500, Mem: 100}); err == nil {
		t.Error("out-of-range memory frequency accepted")
	}
}

func TestDeterministicSimulation(t *testing.T) {
	s := system(t)
	spec := memBoundSpec()
	st := freq.Setting{CPU: 700, Mem: 500}
	a, _ := s.SimulateSample(spec, st)
	b, _ := s.SimulateSample(spec, st)
	if a != b {
		t.Error("simulation not deterministic")
	}
}

func TestBandwidthBoundRespected(t *testing.T) {
	s := system(t)
	// An extreme streaming sample at the slowest memory clock must be
	// bandwidth-bound: time >= bursts / bandwidth.
	spec := workload.SampleSpec{
		Instructions: workload.SampleLen,
		BaseCPI:      0.5, MPKI: 60, RowHitRate: 0.95, MLP: 8, WriteFrac: 0.5,
	}
	smp, err := s.SimulateSample(spec, freq.Setting{CPU: 1000, Mem: 200})
	if err != nil {
		t.Fatal(err)
	}
	accesses := float64(spec.Instructions) * spec.MPKI / 1000
	minNS, _ := system(t).ctrl.MinServiceTimeNS(200, accesses)
	if smp.TimeNS < minNS-1e-6 {
		t.Errorf("time %v below bandwidth bound %v", smp.TimeNS, minNS)
	}
}

func TestEnergyAtMaxVsMin(t *testing.T) {
	// Both the slowest and the fastest settings should cost more energy
	// than some intermediate setting (the Emin interior property that
	// makes inefficiency nontrivial).
	s := system(t)
	spec := workload.SampleSpec{
		Instructions: workload.SampleLen,
		BaseCPI:      1.0, MPKI: 8, RowHitRate: 0.55, MLP: 1.7, WriteFrac: 0.3,
	}
	eAt := func(fc, fm freq.MHz) float64 {
		smp, err := s.SimulateSample(spec, freq.Setting{CPU: fc, Mem: fm})
		if err != nil {
			t.Fatalf("SimulateSample(%v/%v): %v", fc, fm, err)
		}
		return smp.EnergyJ()
	}
	eMin := math.Inf(1)
	for _, fc := range freq.Ladder(100, 1000, 100) {
		for _, fm := range freq.Ladder(200, 800, 100) {
			if e := eAt(fc, fm); e < eMin {
				eMin = e
			}
		}
	}
	slowest := eAt(100, 200)
	fastest := eAt(1000, 800)
	if slowest <= eMin*1.05 {
		t.Errorf("slowest setting energy %v not clearly above Emin %v", slowest, eMin)
	}
	if fastest <= eMin*1.05 {
		t.Errorf("fastest setting energy %v not clearly above Emin %v", fastest, eMin)
	}
}
