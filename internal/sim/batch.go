package sim

// The columnar batch engine. Grid collection is the product's dominant
// cost: every figure and every daemon request ultimately sweeps a realized
// workload across a (CPU × memory) setting space, and the scalar path pays
// per-call validation, model re-derivation, and struct traffic for every
// cell. A Runner instead ingests the realized specs once, lays the
// per-sample inputs out as flat float64 columns (structure-of-arrays),
// hoists every per-setting invariant via System.consts, and solves whole
// setting-columns in a tight check-free loop — reusing its arenas across
// columns so a full grid performs O(1) allocations per column.
//
// Adjacent operating points share the workload trace, so the Runner can
// seed each cell's fixed-point iteration from the time the same sample
// converged to at the previously solved setting (Solve with warm=true)
// instead of the unloaded-latency cold start. Warm starts reach the same
// fixed point within fixedPointTol (pinned by property tests); callers that
// need bit-identical agreement with SimulateSample use cold starts.

import (
	"fmt"

	"mcdvfs/internal/dram"
	"mcdvfs/internal/freq"
	"mcdvfs/internal/rng"
	"mcdvfs/internal/workload"
)

// Runner solves one realized workload across many settings through the
// columnar batch path. It is NOT safe for concurrent use: each collection
// worker owns its own Runner (the arenas are the point). The System behind
// it may be shared freely.
type Runner struct {
	sys   *System
	specs []workload.SampleSpec

	// Per-sample input columns, fixed at construction.
	instr     []float64 // float64(Instructions)
	accesses  []float64 // instr·MPKI/1000
	cpiNum    []float64 // instr·BaseCPI·cpiFactor — the computeNS numerator
	mlp       []float64
	rowHit    []float64
	writeFrac []float64
	counts    []dram.Counts // DRAM event counts (setting-independent)
	noiseH    []uint64      // sample half of the noise-stream hash

	// solvedNS is the pre-noise converged time of the last solved column,
	// the warm-start seed vector for the next.
	solvedNS  []float64
	seedValid bool

	// samples is the output arena; Solve returns it, overwritten per call.
	samples []Sample

	stats RunnerStats
}

// RunnerStats counts solver work across a Runner's lifetime.
type RunnerStats struct {
	// Columns and Cells count Solve calls and the samples they solved.
	Columns uint64
	Cells   uint64
	// Iterations is the total number of fixed-point iterations performed —
	// the denominator for measuring what warm starts save.
	Iterations uint64
	// ConvergenceFailures counts cells whose iteration exhausted
	// fixedPointIters without meeting fixedPointTol. The scalar path used
	// to accept these silently; the batch engine surfaces them.
	ConvergenceFailures uint64
}

// NewRunner validates every spec once and lays the workload out in columns.
func NewRunner(sys *System, specs []workload.SampleSpec) (*Runner, error) {
	r := &Runner{
		sys:       sys,
		specs:     append([]workload.SampleSpec(nil), specs...),
		instr:     make([]float64, len(specs)),
		accesses:  make([]float64, len(specs)),
		cpiNum:    make([]float64, len(specs)),
		mlp:       make([]float64, len(specs)),
		rowHit:    make([]float64, len(specs)),
		writeFrac: make([]float64, len(specs)),
		counts:    make([]dram.Counts, len(specs)),
		noiseH:    make([]uint64, len(specs)),
		solvedNS:  make([]float64, len(specs)),
		samples:   make([]Sample, len(specs)),
	}
	for i, spec := range specs {
		if err := validateSpec(spec); err != nil {
			return nil, fmt.Errorf("sample %d: %w", i, err)
		}
		n := float64(spec.Instructions)
		accesses := n * spec.MPKI / 1000
		r.instr[i] = n
		r.accesses[i] = accesses
		// Same association order as the scalar reference:
		// ((n·BaseCPI)·cpiFactor), divided by the clock rate per column.
		r.cpiNum[i] = n * spec.BaseCPI * sys.cpiFactor
		r.mlp[i] = spec.MLP
		r.rowHit[i] = spec.RowHitRate
		r.writeFrac[i] = spec.WriteFrac
		r.counts[i] = dram.Counts{
			Reads:     dram.RoundCount(accesses * (1 - spec.WriteFrac) * sys.lineBursts),
			Writes:    dram.RoundCount(accesses * spec.WriteFrac * sys.lineBursts),
			Activates: dram.RoundCount(accesses * (1 - spec.RowHitRate)),
		}
		r.noiseH[i] = sampleNoiseHash(spec)
	}
	return r, nil
}

// Len returns the number of samples per column.
func (r *Runner) Len() int { return len(r.specs) }

// Stats returns the accumulated solver counters.
func (r *Runner) Stats() RunnerStats { return r.stats }

// ResetSeed invalidates the warm-start vector; the next Solve cold-starts
// even if called with warm=true. Collection workers call it between
// unrelated setting chains.
func (r *Runner) ResetSeed() { r.seedValid = false }

// Solve simulates every sample at st and returns the finished column. The
// returned slice is the Runner's arena: it is overwritten by the next Solve
// and must be consumed (or copied) before then.
//
// With warm=false every cell cold-starts from the unloaded latency, making
// the column bit-identical to per-cell SimulateSample calls. With warm=true
// (and a previously solved column) each cell seeds its fixed point from the
// time the same sample converged to at the previous setting — correct
// whenever consecutive calls walk a contiguous chain of operating points,
// and worth a third of the iterations on neighboring memory steps.
//
//vet:hotpath
func (r *Runner) Solve(st freq.Setting, warm bool) ([]Sample, error) {
	c, err := r.sys.consts(st)
	if err != nil {
		return nil, err
	}
	warm = warm && r.seedValid
	noise := r.sys.noise
	iters := uint64(0)
	failures := uint64(0)
	for i := range r.instr {
		accesses := r.accesses[i]
		computeNS := r.cpiNum[i] / c.cyclesPerNS
		coreNS := c.lat.CoreServiceNS(r.rowHit[i])
		serviceNS := c.lat.ServiceNS(r.writeFrac[i])
		bwBoundNS := c.lat.MinServiceTimeNS(accesses)
		seedNS := coldStart
		if warm {
			seedNS = r.solvedNS[i]
		}
		t, n, converged := solveTimeNS(computeNS, accesses, r.mlp[i], coreNS, serviceNS, bwBoundNS, c.lat, seedNS)
		r.solvedNS[i] = t
		iters += uint64(n)
		if !converged {
			failures++
		}

		activity := 1.0
		if t > 0 {
			activity = computeNS / t
		}
		if activity > 1 {
			activity = 1
		}

		cpuE := c.cpu.EnergyJ(activity, t)
		memE := c.mem.EnergyJ(r.counts[i], t)

		if noise > 0 {
			src := rng.Value(r.noiseH[i] ^ c.noiseHash)
			t *= src.LogNormFactor(noise)
			cpuE *= src.LogNormFactor(noise)
			memE *= src.LogNormFactor(noise)
		}

		r.samples[i] = Sample{
			Instructions: r.specs[i].Instructions,
			TimeNS:       t,
			CPUEnergyJ:   cpuE,
			MemEnergyJ:   memE,
			CPI:          t * c.cyclesPerNS / r.instr[i],
			MPKI:         r.specs[i].MPKI,
			Activity:     activity,
			Converged:    converged,
		}
	}
	r.seedValid = true
	r.stats.Columns++
	r.stats.Cells += uint64(len(r.instr))
	r.stats.Iterations += iters
	r.stats.ConvergenceFailures += failures
	return r.samples, nil
}
