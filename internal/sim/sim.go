// Package sim is the system simulator: it combines the CPU timing/power
// model, the memory-controller latency model, and the DRAM energy model to
// produce the per-sample measurements the paper collects from gem5 — time,
// CPU energy, memory energy, CPI, and MPKI for every (CPU frequency, memory
// frequency) setting.
//
// # Performance model
//
// For a sample of N instructions with base CPI c, MPKI m, row-hit rate h,
// and memory-level parallelism p, executed at CPU frequency fc and memory
// frequency fm:
//
//	computeTime = N·c / rate(fc)
//	stallTime   = M·L(fm, load) / p,  M = N·m/1000
//
// where L is the controller's average access latency under the offered
// load. Because the offered load itself depends on execution time, the
// solver iterates to a fixed point (with damping), then applies the
// bandwidth bound: execution time can never be less than the time the bus
// needs to move M bursts.
//
// This reproduces the first-order interaction the paper studies: raising
// CPU frequency inflates the *cycle* cost of memory stalls, raising memory
// frequency shrinks burst time and queueing, and the benefit of each knob
// depends on the workload's CPU/memory mix.
package sim

import (
	"fmt"
	"math"

	"mcdvfs/internal/cpupower"
	"mcdvfs/internal/dram"
	"mcdvfs/internal/freq"
	"mcdvfs/internal/memctrl"
	"mcdvfs/internal/rng"
	"mcdvfs/internal/workload"
)

// Config assembles a system.
type Config struct {
	CPUPower cpupower.Params
	Device   dram.Device
	// MeasurementNoise is the log-scale sigma of multiplicative noise
	// applied to each measured time and energy, modeling the run-to-run
	// simulation noise the paper filters with its 0.5% speedup tie band.
	// Noise is deterministic in (sample, setting), so repeated collections
	// are identical. Zero disables it.
	MeasurementNoise float64
	// CPIFactor scales every workload's base CPI, modeling a weaker
	// microarchitecture (e.g. a LITTLE companion core executes the same
	// instructions at higher CPI). Zero means 1.0 (no scaling).
	CPIFactor float64
}

// DefaultConfig returns the calibrated platform emulating the paper's
// system (A15-class core, LPDDR3 single-channel memory).
func DefaultConfig() Config {
	return Config{
		CPUPower:         cpupower.DefaultParams(),
		Device:           dram.DefaultDevice(),
		MeasurementNoise: 0.01,
	}
}

// NoiselessConfig is DefaultConfig without measurement noise, for property
// tests and analyses that need exact model behaviour.
func NoiselessConfig() Config {
	cfg := DefaultConfig()
	cfg.MeasurementNoise = 0
	return cfg
}

// System simulates one platform. It is safe for concurrent use: all state
// is immutable after construction.
type System struct {
	cpu       *cpupower.Model
	mem       *dram.EnergyModel
	ctrl      *memctrl.Model
	noise     float64
	cpiFactor float64
}

// New builds a System from cfg.
func New(cfg Config) (*System, error) {
	cpu, err := cpupower.New(cfg.CPUPower)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	mem, err := dram.NewEnergyModel(cfg.Device)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	ctrl, err := memctrl.New(cfg.Device)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if cfg.MeasurementNoise < 0 || cfg.MeasurementNoise > 0.2 {
		return nil, fmt.Errorf("sim: measurement noise %v outside [0, 0.2]", cfg.MeasurementNoise)
	}
	cpiFactor := cfg.CPIFactor
	if cpiFactor == 0 { //lint:allow floateq zero is the exact unset sentinel for the default
		cpiFactor = 1
	}
	if cpiFactor < 0.1 || cpiFactor > 10 {
		return nil, fmt.Errorf("sim: CPI factor %v outside [0.1, 10]", cfg.CPIFactor)
	}
	return &System{cpu: cpu, mem: mem, ctrl: ctrl, noise: cfg.MeasurementNoise, cpiFactor: cpiFactor}, nil
}

// MustNew is New for static configuration; it panics on error.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Sample is one simulated measurement: the same quantities the paper
// collects from gem5 every 10 million user-mode instructions.
type Sample struct {
	Instructions uint64
	TimeNS       float64
	CPUEnergyJ   float64
	MemEnergyJ   float64
	// CPI is the achieved cycles per instruction at the CPU clock,
	// including exposed memory stall cycles.
	CPI float64
	// MPKI is the realized DRAM accesses per thousand instructions.
	MPKI float64
	// Activity is the fraction of time the core computed (vs stalled).
	Activity float64
}

// EnergyJ returns total sample energy.
func (s Sample) EnergyJ() float64 { return s.CPUEnergyJ + s.MemEnergyJ }

const (
	fixedPointIters = 50
	fixedPointTol   = 1e-9 // relative change per iteration
)

// SimulateSample produces the measurement for one workload sample at one
// setting.
func (s *System) SimulateSample(spec workload.SampleSpec, st freq.Setting) (Sample, error) {
	if spec.Instructions == 0 {
		return Sample{}, fmt.Errorf("sim: sample with zero instructions")
	}
	if spec.BaseCPI <= 0 || spec.MLP < 1 {
		return Sample{}, fmt.Errorf("sim: non-physical sample spec %+v", spec)
	}
	n := float64(spec.Instructions)
	accesses := n * spec.MPKI / 1000
	cpuCyclesPerNS := st.CPU.CyclesPerNS()
	computeNS := n * spec.BaseCPI * s.cpiFactor / cpuCyclesPerNS

	// Fixed point on execution time. Start from the unloaded latency.
	load := memctrl.Load{RowHitRate: spec.RowHitRate, WriteFrac: spec.WriteFrac}
	lat0, err := s.ctrl.AvgLatencyNS(st.Mem, load)
	if err != nil {
		return Sample{}, fmt.Errorf("sim: %w", err)
	}
	bwBound, err := s.ctrl.MinServiceTimeNS(st.Mem, accesses)
	if err != nil {
		return Sample{}, fmt.Errorf("sim: %w", err)
	}
	t := computeNS + accesses*lat0/spec.MLP
	if t < bwBound {
		t = bwBound
	}
	for i := 0; i < fixedPointIters; i++ {
		load.AccessPerNS = 0
		if t > 0 {
			load.AccessPerNS = accesses / t
		}
		lat, err := s.ctrl.AvgLatencyNS(st.Mem, load)
		if err != nil {
			return Sample{}, fmt.Errorf("sim: %w", err)
		}
		next := computeNS + accesses*lat/spec.MLP
		if next < bwBound {
			next = bwBound
		}
		// Damp to guarantee convergence of the negative-feedback loop.
		next = (next + t) / 2
		if math.Abs(next-t) <= fixedPointTol*t {
			t = next
			break
		}
		t = next
	}

	activity := 1.0
	if t > 0 {
		activity = computeNS / t
	}
	if activity > 1 {
		activity = 1
	}

	cpuE, err := s.cpu.Energy(st.CPU, activity, t)
	if err != nil {
		return Sample{}, fmt.Errorf("sim: %w", err)
	}
	// Counts are in data bursts: each cache-line access moves LineBursts
	// bursts; activates happen once per row miss.
	lineBursts := float64(s.mem.Device().LineBursts())
	counts := dram.Counts{
		Reads:     int(accesses*(1-spec.WriteFrac)*lineBursts + 0.5),
		Writes:    int(accesses*spec.WriteFrac*lineBursts + 0.5),
		Activates: int(accesses*(1-spec.RowHitRate) + 0.5),
	}
	memE, err := s.mem.Energy(st.Mem, counts, t)
	if err != nil {
		return Sample{}, fmt.Errorf("sim: %w", err)
	}

	if s.noise > 0 {
		src := noiseSource(spec, st)
		t *= src.LogNormFactor(s.noise)
		cpuE *= src.LogNormFactor(s.noise)
		memE *= src.LogNormFactor(s.noise)
	}

	return Sample{
		Instructions: spec.Instructions,
		TimeNS:       t,
		CPUEnergyJ:   cpuE,
		MemEnergyJ:   memE,
		CPI:          t * cpuCyclesPerNS / n,
		MPKI:         spec.MPKI,
		Activity:     activity,
	}, nil
}

// noiseSource derives a deterministic noise stream from the sample's
// realized characteristics and the setting, so identical collections see
// identical noise while distinct samples, benchmarks, and settings see
// independent draws.
func noiseSource(spec workload.SampleSpec, st freq.Setting) *rng.Source {
	h := uint64(spec.Index)*0x9e3779b97f4a7c15 ^
		math.Float64bits(spec.BaseCPI)*0xbf58476d1ce4e5b9 ^
		math.Float64bits(spec.MPKI)*0x94d049bb133111eb ^
		math.Float64bits(float64(st.CPU))*0xd6e8feb86659fd93 ^
		math.Float64bits(float64(st.Mem))*0xa5a5a5a5a5a5a5a5
	return rng.New(h)
}

// SimulateRun simulates every sample of a realized workload at a fixed
// setting and returns the per-sample measurements.
func (s *System) SimulateRun(specs []workload.SampleSpec, st freq.Setting) ([]Sample, error) {
	out := make([]Sample, len(specs))
	for i, spec := range specs {
		smp, err := s.SimulateSample(spec, st)
		if err != nil {
			return nil, fmt.Errorf("sample %d: %w", i, err)
		}
		out[i] = smp
	}
	return out, nil
}

// Totals aggregates a sample slice.
func Totals(samples []Sample) (timeNS, energyJ float64) {
	for _, s := range samples {
		timeNS += s.TimeNS
		energyJ += s.EnergyJ()
	}
	return timeNS, energyJ
}
