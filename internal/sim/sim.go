// Package sim is the system simulator: it combines the CPU timing/power
// model, the memory-controller latency model, and the DRAM energy model to
// produce the per-sample measurements the paper collects from gem5 — time,
// CPU energy, memory energy, CPI, and MPKI for every (CPU frequency, memory
// frequency) setting.
//
// # Performance model
//
// For a sample of N instructions with base CPI c, MPKI m, row-hit rate h,
// and memory-level parallelism p, executed at CPU frequency fc and memory
// frequency fm:
//
//	computeTime = N·c / rate(fc)
//	stallTime   = M·L(fm, load) / p,  M = N·m/1000
//
// where L is the controller's average access latency under the offered
// load. Because the offered load itself depends on execution time, the
// solver iterates to a fixed point (with damping), then applies the
// bandwidth bound: execution time can never be less than the time the bus
// needs to move M bursts.
//
// This reproduces the first-order interaction the paper studies: raising
// CPU frequency inflates the *cycle* cost of memory stalls, raising memory
// frequency shrinks burst time and queueing, and the benefit of each knob
// depends on the workload's CPU/memory mix.
//
// # Engine layers
//
// The hot path is the columnar batch engine (Runner, batch.go): grid
// collection lays the realized workload out as flat per-sample arrays and
// solves whole setting-columns with every per-setting invariant hoisted,
// optionally warm-starting each cell's fixed point from the neighboring
// operating point. SimulateSample is the thin single-sample wrapper over
// the same solver core for governors, the daemon, and experiments. The
// pre-columnar scalar implementation is retained verbatim (reference.go)
// as the oracle for the differential test suite.
package sim

import (
	"fmt"
	"math"

	"mcdvfs/internal/cpupower"
	"mcdvfs/internal/dram"
	"mcdvfs/internal/freq"
	"mcdvfs/internal/memctrl"
	"mcdvfs/internal/rng"
	"mcdvfs/internal/workload"
)

// Config assembles a system.
type Config struct {
	CPUPower cpupower.Params
	Device   dram.Device
	// MeasurementNoise is the log-scale sigma of multiplicative noise
	// applied to each measured time and energy, modeling the run-to-run
	// simulation noise the paper filters with its 0.5% speedup tie band.
	// Noise is deterministic in (sample, setting), so repeated collections
	// are identical. Zero disables it.
	MeasurementNoise float64
	// CPIFactor scales every workload's base CPI, modeling a weaker
	// microarchitecture (e.g. a LITTLE companion core executes the same
	// instructions at higher CPI). Zero means 1.0 (no scaling).
	CPIFactor float64
}

// DefaultConfig returns the calibrated platform emulating the paper's
// system (A15-class core, LPDDR3 single-channel memory).
func DefaultConfig() Config {
	return Config{
		CPUPower:         cpupower.DefaultParams(),
		Device:           dram.DefaultDevice(),
		MeasurementNoise: 0.01,
	}
}

// NoiselessConfig is DefaultConfig without measurement noise, for property
// tests and analyses that need exact model behaviour.
func NoiselessConfig() Config {
	cfg := DefaultConfig()
	cfg.MeasurementNoise = 0
	return cfg
}

// System simulates one platform. It is safe for concurrent use: all state
// is immutable after construction.
//
//vet:invariant cpiFactor >= 0.1 && cpiFactor <= 10 && lineBursts >= 1
type System struct {
	cpu        *cpupower.Model
	mem        *dram.EnergyModel
	ctrl       *memctrl.Model
	noise      float64
	cpiFactor  float64
	lineBursts float64 // bursts per cache-line access, cached for counts
}

// New builds a System from cfg.
func New(cfg Config) (*System, error) {
	cpu, err := cpupower.New(cfg.CPUPower)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	mem, err := dram.NewEnergyModel(cfg.Device)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	ctrl, err := memctrl.New(cfg.Device)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if cfg.MeasurementNoise < 0 || cfg.MeasurementNoise > 0.2 {
		return nil, fmt.Errorf("sim: measurement noise %v outside [0, 0.2]", cfg.MeasurementNoise)
	}
	cpiFactor := cfg.CPIFactor
	if cpiFactor == 0 { //lint:allow floateq zero is the exact unset sentinel for the default
		cpiFactor = 1
	}
	if cpiFactor < 0.1 || cpiFactor > 10 {
		return nil, fmt.Errorf("sim: CPI factor %v outside [0.1, 10]", cfg.CPIFactor)
	}
	return &System{
		cpu:        cpu,
		mem:        mem,
		ctrl:       ctrl,
		noise:      cfg.MeasurementNoise,
		cpiFactor:  cpiFactor,
		lineBursts: float64(mem.Device().LineBursts()),
	}, nil
}

// MustNew is New for static configuration; it panics on error.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Sample is one simulated measurement: the same quantities the paper
// collects from gem5 every 10 million user-mode instructions.
type Sample struct {
	Instructions uint64
	TimeNS       float64
	CPUEnergyJ   float64
	MemEnergyJ   float64
	// CPI is the achieved cycles per instruction at the CPU clock,
	// including exposed memory stall cycles.
	CPI float64
	// MPKI is the realized DRAM accesses per thousand instructions.
	MPKI float64
	// Activity is the fraction of time the core computed (vs stalled).
	Activity float64
	// Converged reports whether the fixed-point solver met fixedPointTol
	// within fixedPointIters. An unconverged sample carries the last
	// iterate — finite, but up to the damping oscillation away from the
	// true fixed point — and is counted by the collection engine.
	Converged bool
}

// EnergyJ returns total sample energy.
func (s Sample) EnergyJ() float64 { return s.CPUEnergyJ + s.MemEnergyJ }

const (
	fixedPointIters = 50
	fixedPointTol   = 1e-9 // relative change per iteration
)

// coldStart is the seedNS sentinel selecting the unloaded-latency cold
// start; any non-negative seed selects a warm start from that time.
const coldStart = -1.0

// settingConsts packs every per-setting invariant of the simulation: the
// hoisted latency, CPU-power, and DRAM-energy coefficients plus the clock
// rate and the setting's contribution to the noise hash. Deriving it once
// per setting-column is what makes the batch engine fast — the fixed-point
// loop then runs on a handful of local float64s.
//
//vet:invariant cyclesPerNS > 0
type settingConsts struct {
	st          freq.Setting
	cyclesPerNS float64
	lat         memctrl.Coeffs
	cpu         cpupower.Coeffs
	mem         dram.EnergyCoeffs
	noiseHash   uint64 // setting half of the noise-stream hash
}

// consts validates the setting against every component model and hoists the
// per-setting invariants.
func (s *System) consts(st freq.Setting) (settingConsts, error) {
	lat, err := s.ctrl.CoeffsAt(st.Mem)
	if err != nil {
		return settingConsts{}, fmt.Errorf("sim: %w", err)
	}
	cpuC, err := s.cpu.CoeffsAt(st.CPU)
	if err != nil {
		return settingConsts{}, fmt.Errorf("sim: %w", err)
	}
	memC, err := s.mem.CoeffsAt(st.Mem)
	if err != nil {
		return settingConsts{}, fmt.Errorf("sim: %w", err)
	}
	return settingConsts{
		st:          st,
		cyclesPerNS: st.CPU.CyclesPerNS(),
		lat:         lat,
		cpu:         cpuC,
		mem:         memC,
		noiseHash:   settingNoiseHash(st),
	}, nil
}

// validateSpec rejects the sample specs the solver cannot handle. The batch
// engine validates once per sample at Runner construction (and
// SimulateSample once per call) so the per-iteration loop is check-free.
func validateSpec(spec workload.SampleSpec) error {
	switch {
	case spec.Instructions == 0:
		return fmt.Errorf("sim: sample with zero instructions")
	case !(spec.BaseCPI > 0) || math.IsInf(spec.BaseCPI, 0) || !(spec.MLP >= 1) || math.IsInf(spec.MLP, 0):
		return fmt.Errorf("sim: non-physical sample spec %+v", spec)
	case !(spec.MPKI >= 0) || math.IsInf(spec.MPKI, 0):
		return fmt.Errorf("sim: non-physical MPKI %v", spec.MPKI)
	case math.IsNaN(spec.RowHitRate) || spec.RowHitRate < 0 || spec.RowHitRate > 1:
		return fmt.Errorf("sim: row hit rate %v outside [0,1]", spec.RowHitRate)
	case math.IsNaN(spec.WriteFrac) || spec.WriteFrac < 0 || spec.WriteFrac > 1:
		return fmt.Errorf("sim: write fraction %v outside [0,1]", spec.WriteFrac)
	}
	return nil
}

// solveTimeNS runs the damped fixed-point iteration on execution time with
// every invariant prehoisted. seedNS selects the start: coldStart begins
// from the unloaded latency (zero offered load makes the queueing term
// vanish, so the unloaded latency is exactly the core service time); a
// non-negative seed begins from that time, the warm start the batch engine
// feeds from the neighboring operating point. The returned flag reports
// whether the iteration met fixedPointTol.
//
// The loop body mirrors the retained scalar reference (reference.go)
// operation-for-operation, so identical seeds produce bit-identical times.
// iters reports the iterations consumed, the currency warm starts save.
//
//vet:requires computeNS >= 0 && accesses >= 0 && mlp >= 1 && coreNS >= 0 && serviceNS >= 0 && bwBoundNS >= 0
//vet:ensures timeNS >= 0
func solveTimeNS(computeNS, accesses, mlp, coreNS, serviceNS, bwBoundNS float64, lat memctrl.Coeffs, seedNS float64) (timeNS float64, iters int, converged bool) {
	t := seedNS
	if seedNS < 0 {
		t = computeNS + accesses*coreNS/mlp
	}
	if t < bwBoundNS {
		t = bwBoundNS
	}
	for i := 0; i < fixedPointIters; i++ {
		accessPerNS := 0.0
		if t > 0 {
			accessPerNS = accesses / t
		}
		latNS := coreNS + lat.QueueNS(accessPerNS, serviceNS)
		next := computeNS + accesses*latNS/mlp
		if next < bwBoundNS {
			next = bwBoundNS
		}
		// Damp to guarantee convergence of the negative-feedback loop.
		next = (next + t) / 2
		if math.Abs(next-t) <= fixedPointTol*t {
			return next, i + 1, true
		}
		t = next
	}
	return t, fixedPointIters, false
}

// SimulateSample produces the measurement for one workload sample at one
// setting. It is the thin single-sample wrapper over the batch solver core;
// sweeping many samples or settings is much faster through Runner.
//
//vet:hotpath
func (s *System) SimulateSample(spec workload.SampleSpec, st freq.Setting) (Sample, error) {
	if err := validateSpec(spec); err != nil {
		return Sample{}, err
	}
	c, err := s.consts(st)
	if err != nil {
		return Sample{}, err
	}
	smp, _ := s.simulateOne(spec, c, coldStart) //lint:allow rangecheck coldStart is the out-of-band sentinel for "no seed", not a physical time
	return smp, nil
}

// simulateOne solves one validated sample at one hoisted setting, returning
// the finished sample and the pre-noise converged time (the warm-start seed
// for the neighboring operating point). The requires restate validateSpec:
// callers hold a validated spec (the batch engine validates at Runner
// construction, SimulateSample per call).
//
//vet:requires spec.BaseCPI > 0 && spec.MPKI >= 0 && spec.MLP >= 1 && spec.RowHitRate >= 0 && spec.RowHitRate <= 1 && spec.WriteFrac >= 0 && spec.WriteFrac <= 1
func (s *System) simulateOne(spec workload.SampleSpec, c settingConsts, seedNS float64) (Sample, float64) {
	n := float64(spec.Instructions)
	accesses := n * spec.MPKI / 1000
	computeNS := n * spec.BaseCPI * s.cpiFactor / c.cyclesPerNS
	coreNS := c.lat.CoreServiceNS(spec.RowHitRate)
	serviceNS := c.lat.ServiceNS(spec.WriteFrac)
	bwBoundNS := c.lat.MinServiceTimeNS(accesses)

	t, _, converged := solveTimeNS(computeNS, accesses, spec.MLP, coreNS, serviceNS, bwBoundNS, c.lat, seedNS)
	solvedNS := t

	activity := 1.0
	if t > 0 {
		activity = computeNS / t
	}
	if activity > 1 {
		activity = 1
	}

	cpuE := c.cpu.EnergyJ(activity, t)
	// Counts are in data bursts: each cache-line access moves LineBursts
	// bursts; activates happen once per row miss.
	counts := dram.Counts{
		Reads:     dram.RoundCount(accesses * (1 - spec.WriteFrac) * s.lineBursts),
		Writes:    dram.RoundCount(accesses * spec.WriteFrac * s.lineBursts),
		Activates: dram.RoundCount(accesses * (1 - spec.RowHitRate)),
	}
	memE := c.mem.EnergyJ(counts, t)

	if s.noise > 0 {
		src := rng.Value(sampleNoiseHash(spec) ^ c.noiseHash)
		t *= src.LogNormFactor(s.noise)
		cpuE *= src.LogNormFactor(s.noise)
		memE *= src.LogNormFactor(s.noise)
	}

	return Sample{
		Instructions: spec.Instructions,
		TimeNS:       t,
		CPUEnergyJ:   cpuE,
		MemEnergyJ:   memE,
		CPI:          t * c.cyclesPerNS / n,
		MPKI:         spec.MPKI,
		Activity:     activity,
		Converged:    converged,
	}, solvedNS
}

// sampleNoiseHash is the sample half of the noise-stream hash; XORed with
// settingNoiseHash it reproduces the scalar reference's noiseSource seed
// exactly, so identical collections see identical noise while distinct
// samples, benchmarks, and settings see independent draws.
func sampleNoiseHash(spec workload.SampleSpec) uint64 {
	return uint64(spec.Index)*0x9e3779b97f4a7c15 ^
		math.Float64bits(spec.BaseCPI)*0xbf58476d1ce4e5b9 ^
		math.Float64bits(spec.MPKI)*0x94d049bb133111eb
}

// settingNoiseHash is the setting half of the noise-stream hash.
func settingNoiseHash(st freq.Setting) uint64 {
	return math.Float64bits(float64(st.CPU))*0xd6e8feb86659fd93 ^
		math.Float64bits(float64(st.Mem))*0xa5a5a5a5a5a5a5a5
}

// SimulateRun simulates every sample of a realized workload at a fixed
// setting and returns the per-sample measurements. It runs through the
// batch engine; callers needing many settings should hold a Runner and
// sweep it directly.
func (s *System) SimulateRun(specs []workload.SampleSpec, st freq.Setting) ([]Sample, error) {
	r, err := NewRunner(s, specs)
	if err != nil {
		return nil, err
	}
	col, err := r.Solve(st, false)
	if err != nil {
		return nil, err
	}
	return append([]Sample(nil), col...), nil
}

// Totals aggregates a sample slice.
func Totals(samples []Sample) (timeNS, energyJ float64) {
	for _, s := range samples {
		timeNS += s.TimeNS
		energyJ += s.EnergyJ()
	}
	return timeNS, energyJ
}
