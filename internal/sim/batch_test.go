package sim

// Differential and property suite for the columnar batch engine. The
// load-bearing contract: cold-started batch columns are bit-identical to
// the retained scalar reference (reference.go), warm-started columns are
// bit-identical to the seeded reference, and warm starts land on the cold
// fixed point within solver tolerance.

import (
	"math"
	"testing"

	"mcdvfs/internal/freq"
	"mcdvfs/internal/workload"
)

// batchConfigs are the system variants the differential tests sweep: the
// noiseless model, the default noisy model, and a scaled-CPI (LITTLE-core)
// model, so hoisting is checked against every config knob that feeds it.
func batchConfigs() map[string]Config {
	little := NoiselessConfig()
	little.CPIFactor = 1.7
	return map[string]Config{
		"noiseless": NoiselessConfig(),
		"noisy":     DefaultConfig(),
		"littleCPI": little,
	}
}

// chainSettings returns one CPU chain of the coarse space: every memory
// step at the given CPU step, in descending ladder order — the unit of work
// whose warm-start seeding the collection engine relies on. Descending
// because a faster memory step's time seeds the next slower step from
// below: bandwidth-clamped cells then clamp straight onto their bound
// (instant convergence) instead of decaying down to it.
func chainSettings(cpu freq.MHz) []freq.Setting {
	mem := freq.CoarseSpace().MemLadder()
	sts := make([]freq.Setting, 0, len(mem))
	for mi := len(mem) - 1; mi >= 0; mi-- {
		sts = append(sts, freq.Setting{CPU: cpu, Mem: mem[mi]})
	}
	return sts
}

func TestBatchColdMatchesReferenceBitwise(t *testing.T) {
	specs := workload.MustByName("milc").MustRealize()[:40]
	for name, cfg := range batchConfigs() {
		s := MustNew(cfg)
		r, err := NewRunner(s, specs)
		if err != nil {
			t.Fatalf("%s: NewRunner: %v", name, err)
		}
		for _, st := range freq.CoarseSpace().Settings() {
			r.ResetSeed()
			col, err := r.Solve(st, false)
			if err != nil {
				t.Fatalf("%s: Solve(%v): %v", name, st, err)
			}
			for i, spec := range specs {
				want, _, err := s.ReferenceSimulate(spec, st, coldStart) //lint:allow rangecheck coldStart is the out-of-band sentinel for "no seed", not a physical time
				if err != nil {
					t.Fatalf("%s: ReferenceSimulate(%v): %v", name, st, err)
				}
				if col[i] != want {
					t.Fatalf("%s: sample %d at %v: batch %+v != reference %+v",
						name, i, st, col[i], want)
				}
			}
		}
	}
}

func TestBatchWarmChainMatchesSeededReference(t *testing.T) {
	specs := workload.MustByName("lbm").MustRealize()[:40]
	for name, cfg := range batchConfigs() {
		s := MustNew(cfg)
		r, err := NewRunner(s, specs)
		if err != nil {
			t.Fatalf("%s: NewRunner: %v", name, err)
		}
		for _, fc := range []freq.MHz{100, 600, 1000} {
			r.ResetSeed()
			seeds := make([]float64, len(specs))
			for i := range seeds {
				seeds[i] = coldStart
			}
			for mi, st := range chainSettings(fc) {
				col, err := r.Solve(st, mi > 0)
				if err != nil {
					t.Fatalf("%s: Solve(%v): %v", name, st, err)
				}
				for i, spec := range specs {
					want, solved, err := s.ReferenceSimulate(spec, st, seeds[i])
					if err != nil {
						t.Fatalf("%s: ReferenceSimulate(%v): %v", name, st, err)
					}
					if col[i] != want {
						t.Fatalf("%s: sample %d at %v (chain step %d): batch %+v != seeded reference %+v",
							name, i, st, mi, col[i], want)
					}
					seeds[i] = solved
				}
			}
		}
	}
}

func TestSimulateSampleMatchesBatchCold(t *testing.T) {
	s := MustNew(DefaultConfig())
	specs := workload.MustByName("gcc").MustRealize()[:20]
	r, err := NewRunner(s, specs)
	if err != nil {
		t.Fatal(err)
	}
	st := freq.Setting{CPU: 700, Mem: 500}
	col, err := r.Solve(st, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		want, err := s.SimulateSample(spec, st)
		if err != nil {
			t.Fatal(err)
		}
		if col[i] != want {
			t.Fatalf("sample %d: batch %+v != SimulateSample %+v", i, col[i], want)
		}
	}
}

func TestWarmStartReachesColdFixedPoint(t *testing.T) {
	// Warm and cold starts are different initial iterates of the same
	// damped contraction, so both must land on the fixed point within the
	// solver's own tolerance (a few tolerances of slack for the landing
	// position within the final damped step).
	s := system(t)
	specs := workload.MustByName("libquantum").MustRealize()[:60]
	warm, err := NewRunner(s, specs)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewRunner(s, specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, fc := range freq.CoarseSpace().CPULadder() {
		warm.ResetSeed()
		for mi, st := range chainSettings(fc) {
			w, err := warm.Solve(st, mi > 0)
			if err != nil {
				t.Fatal(err)
			}
			cold.ResetSeed()
			c, err := cold.Solve(st, false)
			if err != nil {
				t.Fatal(err)
			}
			for i := range specs {
				if !w[i].Converged || !c[i].Converged {
					t.Fatalf("sample %d at %v did not converge (warm %v cold %v)",
						i, st, w[i].Converged, c[i].Converged)
				}
				rel := math.Abs(w[i].TimeNS-c[i].TimeNS) / c[i].TimeNS
				if rel > 10*fixedPointTol {
					t.Errorf("sample %d at %v: warm %v vs cold %v, rel %v",
						i, st, w[i].TimeNS, c[i].TimeNS, rel)
				}
			}
		}
	}
}

func TestWarmStartSavesIterations(t *testing.T) {
	// The point of warm starting: sweeping a memory chain warm must spend
	// measurably fewer solver iterations than cold-starting every column.
	s := system(t)
	specs := workload.MustByName("lbm").MustRealize()
	warm, _ := NewRunner(s, specs)
	cold, _ := NewRunner(s, specs)
	for mi, st := range chainSettings(600) {
		if _, err := warm.Solve(st, mi > 0); err != nil {
			t.Fatal(err)
		}
		cold.ResetSeed()
		if _, err := cold.Solve(st, false); err != nil {
			t.Fatal(err)
		}
	}
	wi, ci := warm.Stats().Iterations, cold.Stats().Iterations
	if wi >= ci {
		t.Fatalf("warm sweep used %d iterations, cold %d — warm start saved nothing", wi, ci)
	}
	t.Logf("iterations: warm %d vs cold %d (%.0f%% saved)", wi, ci, 100*(1-float64(wi)/float64(ci)))
}

func TestBatchProperties(t *testing.T) {
	// Model invariants over a real benchmark sweep: every solve converges,
	// respects the bandwidth bound, keeps activity in (0,1], and time never
	// increases when only memory frequency rises.
	s := system(t)
	specs := workload.MustByName("milc").MustRealize()
	r, err := NewRunner(s, specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, fc := range freq.CoarseSpace().CPULadder() {
		// Chains walk memory frequency downward, so per-sample time must be
		// non-decreasing along the chain (slower memory never speeds you up).
		prev := make([]float64, len(specs))
		for mi, st := range chainSettings(fc) {
			col, err := r.Solve(st, mi > 0)
			if err != nil {
				t.Fatal(err)
			}
			coeffs, err := s.ctrl.CoeffsAt(st.Mem)
			if err != nil {
				t.Fatal(err)
			}
			for i, smp := range col {
				if !smp.Converged {
					t.Fatalf("sample %d at %v did not converge", i, st)
				}
				bound := coeffs.MinServiceTimeNS(r.accesses[i])
				if smp.TimeNS < bound {
					t.Errorf("sample %d at %v: time %v below bandwidth bound %v",
						i, st, smp.TimeNS, bound)
				}
				if smp.Activity <= 0 || smp.Activity > 1 {
					t.Errorf("sample %d at %v: activity %v outside (0,1]", i, st, smp.Activity)
				}
				if smp.TimeNS < prev[i]*(1-fixedPointTol) {
					t.Errorf("sample %d: time fell from %v to %v when mem freq dropped to %v",
						i, prev[i], smp.TimeNS, st.Mem)
				}
				prev[i] = smp.TimeNS
			}
		}
	}
}

// oscillatorSpec is a sample engineered to defeat the damped iteration: at
// maximum MLP the solver's local slope magnitude exceeds 3, so the damped
// map's slope magnitude exceeds 1 and the iterate settles into a 2-cycle
// around the fixed point instead of converging. It is non-physical but
// passes validation; the solver must report it rather than silently accept
// the 50th iterate.
func oscillatorSpec() workload.SampleSpec {
	return workload.SampleSpec{
		Instructions: workload.SampleLen,
		BaseCPI:      0.5, MPKI: 300, RowHitRate: 0, MLP: 8, WriteFrac: 1,
	}
}

func TestConvergenceFailureReported(t *testing.T) {
	s := system(t)
	spec := oscillatorSpec()
	st := freq.Setting{CPU: 1000, Mem: 200}
	smp, err := s.SimulateSample(spec, st)
	if err != nil {
		t.Fatalf("SimulateSample: %v", err)
	}
	if smp.Converged {
		t.Skip("oscillator spec converged — solver dynamics changed; rebuild the adversarial case")
	}
	if smp.TimeNS <= 0 || math.IsNaN(smp.TimeNS) || math.IsInf(smp.TimeNS, 0) {
		t.Fatalf("unconverged sample has non-finite time %v", smp.TimeNS)
	}
	// The batch path must agree bit-for-bit and count the failure.
	r, err := NewRunner(s, []workload.SampleSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	col, err := r.Solve(st, false)
	if err != nil {
		t.Fatal(err)
	}
	if col[0] != smp {
		t.Fatalf("batch %+v != scalar %+v for unconverged sample", col[0], smp)
	}
	if got := r.Stats().ConvergenceFailures; got != 1 {
		t.Fatalf("ConvergenceFailures = %d, want 1", got)
	}
	ref, _, err := s.ReferenceSimulate(spec, st, coldStart) //lint:allow rangecheck coldStart is the out-of-band sentinel for "no seed", not a physical time
	if err != nil {
		t.Fatal(err)
	}
	if ref != smp {
		t.Fatalf("reference %+v != scalar %+v for unconverged sample", ref, smp)
	}
}

func TestNewRunnerRejectsBadSpecs(t *testing.T) {
	s := system(t)
	bad := []workload.SampleSpec{cpuBoundSpec(), {}}
	if _, err := NewRunner(s, bad); err == nil {
		t.Error("runner accepted zero-instruction spec")
	}
	nan := cpuBoundSpec()
	nan.MPKI = math.NaN()
	if _, err := NewRunner(s, []workload.SampleSpec{nan}); err == nil {
		t.Error("runner accepted NaN MPKI")
	}
}

func TestRunnerSolveRejectsBadSetting(t *testing.T) {
	s := system(t)
	r, err := NewRunner(s, []workload.SampleSpec{cpuBoundSpec()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Solve(freq.Setting{CPU: 5000, Mem: 400}, false); err == nil {
		t.Error("out-of-range CPU frequency accepted")
	}
	if _, err := r.Solve(freq.Setting{CPU: 500, Mem: 100}, false); err == nil {
		t.Error("out-of-range memory frequency accepted")
	}
}

// FuzzBatchVsScalar drives a randomized sample through a warm memory chain
// on both engines and requires bit-identical results at every step.
func FuzzBatchVsScalar(f *testing.F) {
	f.Add(uint64(3), 0.9, 12.0, 0.7, 2.5, 0.3, uint8(4), 0.01)
	f.Add(uint64(0), 0.5, 300.0, 0.0, 8.0, 1.0, uint8(9), 0.0)
	f.Add(uint64(91), 2.4, 0.0, 1.0, 1.0, 0.0, uint8(0), 0.05)
	f.Fuzz(func(t *testing.T, idx uint64, baseCPI, mpki, rowHit, mlp, writeFrac float64, cpuIdx uint8, noise float64) {
		spec := workload.SampleSpec{
			Index:        int(idx % 4096),
			Instructions: workload.SampleLen,
			BaseCPI:      baseCPI,
			MPKI:         mpki,
			RowHitRate:   rowHit,
			MLP:          mlp,
			WriteFrac:    writeFrac,
		}
		if validateSpec(spec) != nil {
			t.Skip("invalid spec")
		}
		cfg := NoiselessConfig()
		if math.IsNaN(noise) || noise < 0 || noise > 0.2 {
			noise = 0.01
		}
		cfg.MeasurementNoise = noise
		s := MustNew(cfg)
		ladder := freq.CoarseSpace().CPULadder()
		fc := ladder[int(cpuIdx)%len(ladder)]
		r, err := NewRunner(s, []workload.SampleSpec{spec})
		if err != nil {
			t.Fatal(err)
		}
		seed := coldStart
		for mi, st := range chainSettings(fc) {
			col, err := r.Solve(st, mi > 0)
			if err != nil {
				t.Fatal(err)
			}
			want, solved, err := s.ReferenceSimulate(spec, st, seed)
			if err != nil {
				t.Fatal(err)
			}
			if col[0] != want {
				t.Fatalf("at %v (step %d): batch %+v != reference %+v", st, mi, col[0], want)
			}
			seed = solved
		}
	})
}
