package sim

// The retained scalar reference implementation. This is the pre-columnar
// per-sample simulation loop kept verbatim — per-call validation, Model
// methods re-deriving device timings every iteration, struct-based Load —
// serving as the oracle for the differential suite (simdiff): the batch
// engine must reproduce it bit-for-bit on every built-in benchmark and
// every setting of the default spaces. It is deliberately slow; nothing in
// the product calls it.
//
// Two deviations from the historical body, both shared with the batch path
// so the comparison stays meaningful:
//
//   - seedNS: the fixed point can start from a caller-provided time
//     (seedNS >= 0) instead of the unloaded latency, mirroring the batch
//     engine's warm starts so warm columns diff bitwise too.
//   - counts use dram.RoundCount instead of the historical int(x+0.5),
//     which mis-rounds near the float53 boundary (see dram.RoundCount).

import (
	"fmt"
	"math"

	"mcdvfs/internal/dram"
	"mcdvfs/internal/freq"
	"mcdvfs/internal/memctrl"
	"mcdvfs/internal/rng"
	"mcdvfs/internal/workload"
)

// ReferenceSimulate is the scalar-reference SimulateSample. seedNS < 0
// (coldStart) starts the fixed point from the unloaded latency; a
// non-negative seed warm-starts from that time. It returns the finished
// sample and the pre-noise converged time.
func (s *System) ReferenceSimulate(spec workload.SampleSpec, st freq.Setting, seedNS float64) (Sample, float64, error) {
	if spec.Instructions == 0 {
		return Sample{}, 0, fmt.Errorf("sim: sample with zero instructions")
	}
	if spec.BaseCPI <= 0 || spec.MLP < 1 {
		return Sample{}, 0, fmt.Errorf("sim: non-physical sample spec %+v", spec)
	}
	n := float64(spec.Instructions)
	accesses := n * spec.MPKI / 1000
	cpuCyclesPerNS := st.CPU.CyclesPerNS()
	computeNS := n * spec.BaseCPI * s.cpiFactor / cpuCyclesPerNS

	// Fixed point on execution time. Start from the unloaded latency (or
	// the caller's seed).
	load := memctrl.Load{RowHitRate: spec.RowHitRate, WriteFrac: spec.WriteFrac}
	lat0, err := s.ctrl.AvgLatencyNS(st.Mem, load)
	if err != nil {
		return Sample{}, 0, fmt.Errorf("sim: %w", err)
	}
	bwBound, err := s.ctrl.MinServiceTimeNS(st.Mem, accesses)
	if err != nil {
		return Sample{}, 0, fmt.Errorf("sim: %w", err)
	}
	t := seedNS
	if seedNS < 0 {
		t = computeNS + accesses*lat0/spec.MLP
	}
	if t < bwBound {
		t = bwBound
	}
	converged := false
	for i := 0; i < fixedPointIters; i++ {
		load.AccessPerNS = 0
		if t > 0 {
			load.AccessPerNS = accesses / t
		}
		lat, err := s.ctrl.AvgLatencyNS(st.Mem, load)
		if err != nil {
			return Sample{}, 0, fmt.Errorf("sim: %w", err)
		}
		next := computeNS + accesses*lat/spec.MLP
		if next < bwBound {
			next = bwBound
		}
		// Damp to guarantee convergence of the negative-feedback loop.
		next = (next + t) / 2
		if math.Abs(next-t) <= fixedPointTol*t {
			t = next
			converged = true
			break
		}
		t = next
	}
	solvedNS := t

	activity := 1.0
	if t > 0 {
		activity = computeNS / t
	}
	if activity > 1 {
		activity = 1
	}

	cpuE, err := s.cpu.Energy(st.CPU, activity, t)
	if err != nil {
		return Sample{}, 0, fmt.Errorf("sim: %w", err)
	}
	// Counts are in data bursts: each cache-line access moves LineBursts
	// bursts; activates happen once per row miss.
	lineBursts := float64(s.mem.Device().LineBursts())
	counts := dram.Counts{
		Reads:     dram.RoundCount(accesses * (1 - spec.WriteFrac) * lineBursts),
		Writes:    dram.RoundCount(accesses * spec.WriteFrac * lineBursts),
		Activates: dram.RoundCount(accesses * (1 - spec.RowHitRate)),
	}
	memE, err := s.mem.Energy(st.Mem, counts, t)
	if err != nil {
		return Sample{}, 0, fmt.Errorf("sim: %w", err)
	}

	if s.noise > 0 {
		src := noiseSource(spec, st)
		t *= src.LogNormFactor(s.noise)
		cpuE *= src.LogNormFactor(s.noise)
		memE *= src.LogNormFactor(s.noise)
	}

	return Sample{
		Instructions: spec.Instructions,
		TimeNS:       t,
		CPUEnergyJ:   cpuE,
		MemEnergyJ:   memE,
		CPI:          t * cpuCyclesPerNS / n,
		MPKI:         spec.MPKI,
		Activity:     activity,
		Converged:    converged,
	}, solvedNS, nil
}

// noiseSource derives the reference's noise stream from the sample's
// realized characteristics and the setting. The batch engine splits the
// same hash into sample and setting halves (sampleNoiseHash XOR
// settingNoiseHash); XOR associativity makes the seeds identical.
func noiseSource(spec workload.SampleSpec, st freq.Setting) *rng.Source {
	h := uint64(spec.Index)*0x9e3779b97f4a7c15 ^
		math.Float64bits(spec.BaseCPI)*0xbf58476d1ce4e5b9 ^
		math.Float64bits(spec.MPKI)*0x94d049bb133111eb ^
		math.Float64bits(float64(st.CPU))*0xd6e8feb86659fd93 ^
		math.Float64bits(float64(st.Mem))*0xa5a5a5a5a5a5a5a5
	return rng.New(h)
}

// ReferenceRun is ReferenceSimulate over a whole realized workload at one
// setting, cold-starting every sample — the scalar oracle for SimulateRun.
func (s *System) ReferenceRun(specs []workload.SampleSpec, st freq.Setting) ([]Sample, error) {
	out := make([]Sample, len(specs))
	for i, spec := range specs {
		smp, _, err := s.ReferenceSimulate(spec, st, coldStart) //lint:allow rangecheck coldStart is the out-of-band sentinel for "no seed", not a physical time
		if err != nil {
			return nil, fmt.Errorf("sample %d: %w", i, err)
		}
		out[i] = smp
	}
	return out, nil
}
