// Package mcdvfs is a reproduction of "Energy-Performance Trade-offs on
// Energy-Constrained Devices with Multi-Component DVFS" (Begum et al.,
// IISWC 2015) as a Go library.
//
// The package is the public façade over the internal implementation. It
// exposes:
//
//   - the simulated platform (an A15-class CPU with DVFS plus an LPDDR3
//     memory with DFS) and its characterization grids,
//   - the paper's contribution: the inefficiency metric, optimal-setting
//     selection under inefficiency budgets, performance clusters, stable
//     regions, and trade-off evaluation with tuning overhead,
//   - online governors built on those ideas, and
//   - runnable experiments regenerating every figure of the paper's
//     evaluation.
//
// A minimal session:
//
//	grid, err := mcdvfs.Collect("gobmk", mcdvfs.CoarseSpace())
//	a, err := mcdvfs.Analyze(grid)
//	best, err := a.OptimalSetting(0, 1.3) // sample 0, inefficiency budget 1.3
//	regions, err := a.StableRegions(1.3, 0.05)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every figure.
package mcdvfs

import (
	"context"
	"io"

	"mcdvfs/internal/core"
	"mcdvfs/internal/experiments"
	"mcdvfs/internal/freq"
	"mcdvfs/internal/governor"
	"mcdvfs/internal/profile"
	"mcdvfs/internal/sim"
	"mcdvfs/internal/trace"
	"mcdvfs/internal/workload"
)

// Re-exported core types. These aliases are the public names; the internal
// packages carry the implementations and their documentation.
type (
	// MHz is a clock frequency in megahertz.
	MHz = freq.MHz
	// Setting is one joint (CPU, memory) frequency choice.
	Setting = freq.Setting
	// SettingID indexes a Setting within a Space.
	SettingID = freq.SettingID
	// Space is an enumerated set of settings.
	Space = freq.Space
	// Grid is a per-sample, per-setting measurement matrix.
	Grid = trace.Grid
	// Measurement is one grid cell.
	Measurement = trace.Measurement
	// Analysis precomputes inefficiency and speedup over a grid and hosts
	// the paper's algorithms.
	Analysis = core.Analysis
	// Cluster is a per-sample performance cluster.
	Cluster = core.Cluster
	// Region is a stable region.
	Region = core.Region
	// Schedule assigns a setting to every sample.
	Schedule = core.Schedule
	// Overhead models tuning cost (search + transition).
	Overhead = core.Overhead
	// Tradeoff is a Figure 11-style comparison result.
	Tradeoff = core.Tradeoff
	// Benchmark is a synthetic workload description.
	Benchmark = workload.Benchmark
	// System is the simulated platform.
	System = sim.System
	// SystemConfig configures the simulated platform.
	SystemConfig = sim.Config
	// Lab caches grids and runs experiments.
	Lab = experiments.Lab
	// LabOption configures a Lab at construction.
	LabOption = experiments.Option
	// CollectOptions tunes grid collection (worker-pool size).
	CollectOptions = trace.CollectOptions
	// Governor is an online frequency governor.
	Governor = governor.Governor
	// GovernorResult summarizes an online governor run.
	GovernorResult = governor.Result
	// GovernorOverhead models per-search and per-transition governor cost.
	GovernorOverhead = governor.Overhead
	// BudgetGovernorConfig configures the inefficiency-budget governor.
	BudgetGovernorConfig = governor.BudgetConfig
	// GovernorModel predicts candidate-setting behaviour for governors.
	GovernorModel = governor.Model
	// SearchStart selects where a governor's tuning search begins.
	SearchStart = governor.SearchStart
)

// Search strategies for the budget governor.
const (
	// FromMax restarts every search from the full space (CoScale-style).
	FromMax = governor.FromMax
	// FromPrevious searches outward from the current setting.
	FromPrevious = governor.FromPrevious
)

// Unconstrained is the infinite inefficiency budget (the paper's "∞").
var Unconstrained = core.Unconstrained

// CoarseSpace returns the paper's 70-setting space (100 MHz steps).
func CoarseSpace() *Space { return freq.CoarseSpace() }

// FineSpace returns the paper's 496-setting space (30/40 MHz steps).
func FineSpace() *Space { return freq.FineSpace() }

// Benchmarks returns the names of all registered workloads.
func Benchmarks() []string { return workload.Names() }

// HeadlineBenchmarks returns the six benchmarks used throughout the
// paper's figures.
func HeadlineBenchmarks() []string { return workload.HeadlineNames() }

// BenchmarkByName returns the named workload.
func BenchmarkByName(name string) (Benchmark, error) { return workload.ByName(name) }

// DefaultSystemConfig returns the calibrated platform configuration.
func DefaultSystemConfig() SystemConfig { return sim.DefaultConfig() }

// NewSystem builds a simulated platform.
func NewSystem(cfg SystemConfig) (*System, error) { return sim.New(cfg) }

// Collect sweeps a benchmark across a setting space on the default
// platform, producing its characterization grid.
func Collect(benchmark string, space *Space) (*Grid, error) {
	return CollectContext(context.Background(), benchmark, space, CollectOptions{})
}

// CollectContext is Collect with cancellation and an explicit worker-pool
// size. The parallel sweep is byte-identical to a serial one for any
// worker count.
func CollectContext(ctx context.Context, benchmark string, space *Space, opts CollectOptions) (*Grid, error) {
	sys, err := sim.New(sim.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return CollectOnContext(ctx, sys, benchmark, space, opts)
}

// CollectOn is Collect against a specific platform.
func CollectOn(sys *System, benchmark string, space *Space) (*Grid, error) {
	return CollectOnContext(context.Background(), sys, benchmark, space, CollectOptions{})
}

// CollectOnContext is CollectContext against a specific platform.
func CollectOnContext(ctx context.Context, sys *System, benchmark string, space *Space, opts CollectOptions) (*Grid, error) {
	b, err := workload.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	return trace.CollectContext(ctx, sys, b, space, opts)
}

// Analyze builds the inefficiency/speedup analysis for a grid.
func Analyze(g *Grid) (*Analysis, error) { return core.NewAnalysis(g) }

// ReadGridJSON deserializes and validates a characterization grid written
// with Grid.WriteJSON.
func ReadGridJSON(r io.Reader) (*Grid, error) { return trace.ReadJSON(r) }

// Profile is an offline stable-region profile (paper Section VII).
type Profile = profile.Profile

// BuildProfile profiles a characterized grid at one (budget, threshold).
func BuildProfile(g *Grid, budget, threshold float64) (*Profile, error) {
	return profile.Build(g, budget, threshold)
}

// ReadProfileJSON deserializes and validates a profile.
func ReadProfileJSON(r io.Reader) (*Profile, error) { return profile.ReadJSON(r) }

// NewProfileGovernor replays a profile at runtime with an optional drift
// fallback governor.
func NewProfileGovernor(p *Profile, fallback Governor, tolerance float64) (Governor, error) {
	return profile.NewGovernor(p, fallback, tolerance)
}

// DefaultOverhead returns the paper's measured tuning overhead
// (500 µs, 30 µJ per 70-setting tune).
func DefaultOverhead() Overhead { return core.DefaultOverhead() }

// NewLab builds an experiment lab on the default platform. Options tune
// the collection engine and caching; a zero-option lab matches the paper's
// setup exactly.
func NewLab(opts ...LabOption) (*Lab, error) { return experiments.NewLab(opts...) }

// NewLabWithConfig builds an experiment lab on a custom platform.
func NewLabWithConfig(cfg SystemConfig, opts ...LabOption) (*Lab, error) {
	return experiments.NewLabWithConfig(cfg, opts...)
}

// WithWorkers bounds a Lab's collection worker pool; zero or negative
// selects GOMAXPROCS.
func WithWorkers(n int) LabOption { return experiments.WithWorkers(n) }

// WithGridCacheDir persists collected grids to dir as JSON, keyed by
// (benchmark, space, platform-config hash), so later labs with the same
// configuration reload instead of recollecting.
func WithGridCacheDir(dir string) LabOption { return experiments.WithGridCacheDir(dir) }

// NewPerformanceGovernor pins the space's maximum setting.
func NewPerformanceGovernor(space *Space) Governor { return governor.NewPerformance(space) }

// NewPowersaveGovernor pins the space's minimum setting.
func NewPowersaveGovernor(space *Space) Governor { return governor.NewPowersave(space) }

// NewUserspaceGovernor pins an arbitrary fixed setting.
func NewUserspaceGovernor(st Setting) Governor { return governor.NewUserspace(st) }

// NewOnDemandGovernor builds the Linux-ondemand-style utilization governor
// extended to both components — the load-following baseline with no energy
// awareness.
func NewOnDemandGovernor(space *Space) (Governor, error) { return governor.NewOnDemand(space) }

// NewRateLimiterGovernor builds the absolute-energy rate-limiting baseline
// (paper Section II) with a fixed per-interval energy allowance in joules.
func NewRateLimiterGovernor(space *Space, allowanceJ float64) (Governor, error) {
	return governor.NewRateLimiter(space, allowanceJ)
}

// NewEDPGovernor builds the energy-delay-product baseline minimizing
// E·Dⁿ each interval.
func NewEDPGovernor(space *Space, model GovernorModel, exponent float64) (Governor, error) {
	return governor.NewEDP(space, model, exponent)
}

// NewBudgetGovernor builds the paper-inspired inefficiency-budget cluster
// governor.
func NewBudgetGovernor(cfg BudgetGovernorConfig) (Governor, error) {
	return governor.NewBudget(cfg)
}

// NewGovernorModel returns the perfect-model candidate predictor backed by
// the noiseless simulator.
func NewGovernorModel() (GovernorModel, error) { return governor.NewSimModel() }

// DefaultGovernorOverhead reproduces the paper's 500 µs / 30 µJ full-tune
// cost split into per-setting and per-transition components.
func DefaultGovernorOverhead() GovernorOverhead { return governor.DefaultOverhead() }

// RunGovernor drives a governor through a benchmark on the given platform.
func RunGovernor(sys *System, benchmark string, gov Governor, oh GovernorOverhead) (GovernorResult, error) {
	b, err := workload.ByName(benchmark)
	if err != nil {
		return GovernorResult{}, err
	}
	specs, err := b.Realize()
	if err != nil {
		return GovernorResult{}, err
	}
	return governor.Run(sys, specs, gov, oh)
}

// Experiment describes one runnable paper figure.
type Experiment struct {
	ID          string
	Description string
	runner      experiments.Runner
}

// Run regenerates the experiment, writing its tables to w.
func (e Experiment) Run(l *Lab, w io.Writer) error { return e.runner.Run(l, w) }

// Experiments lists every figure runner (fig2..fig12 plus the governor
// comparison) in paper order.
func Experiments() []Experiment {
	var out []Experiment
	for _, r := range experiments.Runners() {
		out = append(out, Experiment{ID: r.ID, Description: r.Description, runner: r})
	}
	return out
}

// ExperimentByID returns one experiment runner.
func ExperimentByID(id string) (Experiment, error) {
	r, err := experiments.RunnerByID(id)
	if err != nil {
		return Experiment{}, err
	}
	return Experiment{ID: r.ID, Description: r.Description, runner: r}, nil
}
