// Battery life: the paper's motivation is that battery lifetime is the
// top smartphone complaint. This example converts governor outcomes into
// the number the user actually feels — how long a battery lasts — by
// running a sustained workload under each policy and dividing a phone-
// class battery budget by the measured average power.
//
// The inefficiency budget becomes a direct lifetime dial: I=1.0 maximizes
// hours at the cost of speed, I=1.6 trades hours for responsiveness, and
// the energy-blind governors (performance, ondemand) show what those hours
// cost when nobody is accounting for energy.
package main

import (
	"fmt"
	"log"

	"mcdvfs"
)

func main() {
	const (
		bench = "gobmk" // interactive, phase-heavy workload
		// Phone-class battery: 3000 mAh at 3.85 V ≈ 41.6 kJ. The modeled
		// CPU+DRAM subsystem gets a 20% share of it.
		batteryJ = 3000.0 / 1000 * 3600 * 3.85 * 0.20
	)

	sys, err := mcdvfs.NewSystem(mcdvfs.DefaultSystemConfig())
	if err != nil {
		log.Fatal(err)
	}
	space := mcdvfs.CoarseSpace()
	model, err := mcdvfs.NewGovernorModel()
	if err != nil {
		log.Fatal(err)
	}

	budgetGov := func(budget float64) mcdvfs.Governor {
		gov, err := mcdvfs.NewBudgetGovernor(mcdvfs.BudgetGovernorConfig{
			Budget:    budget,
			Threshold: 0.03,
			Space:     space,
			Model:     model,
			Search:    mcdvfs.FromPrevious,
		})
		if err != nil {
			log.Fatal(err)
		}
		return gov
	}
	ondemand, err := mcdvfs.NewOnDemandGovernor(space)
	if err != nil {
		log.Fatal(err)
	}

	governors := []mcdvfs.Governor{
		mcdvfs.NewPerformanceGovernor(space),
		ondemand,
		budgetGov(1.6),
		budgetGov(1.3),
		budgetGov(1.1),
		mcdvfs.NewPowersaveGovernor(space),
	}

	fmt.Printf("sustained %s on a %.1f kJ subsystem budget\n\n", bench, batteryJ/1000)
	fmt.Printf("%-34s %10s %10s %12s %14s\n",
		"governor", "time (ms)", "avg W", "battery (h)", "work/charge")
	var baseWork float64
	for i, gov := range governors {
		res, err := mcdvfs.RunGovernor(sys, bench, gov, mcdvfs.DefaultGovernorOverhead())
		if err != nil {
			log.Fatal(err)
		}
		avgW := res.EnergyJ / (res.TimeNS * 1e-9)
		hours := batteryJ / avgW / 3600
		// Work per charge: how many runs of the benchmark one battery
		// budget completes — the energy-proportional figure of merit.
		runs := batteryJ / res.EnergyJ
		if i == 0 {
			baseWork = runs
		}
		fmt.Printf("%-34s %10.1f %10.2f %12.1f %11.0f (%.2fx)\n",
			res.Governor, res.TimeNS/1e6, avgW, hours, runs, runs/baseWork)
	}
	fmt.Println("\nLower inefficiency budgets stretch the battery: the budget governor at")
	fmt.Println("I=1.1 completes more work per charge than performance/ondemand while")
	fmt.Println("staying dramatically faster than powersave.")
}
