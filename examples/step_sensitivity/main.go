// Step sensitivity: how does the number of available frequency steps
// affect the characterization? Reproduces the paper's Section VI-D study
// (Figure 12): the 70-setting coarse space (100 MHz steps) against the
// 496-setting fine space (30 MHz CPU / 40 MHz memory steps) on gobmk.
//
// Finer steps give better choices — so clusters move more and stable
// regions shrink — but buy almost no end-to-end performance when tuning is
// free, while making every search ~7x more expensive.
package main

import (
	"fmt"
	"log"

	"mcdvfs"
)

func main() {
	const (
		bench     = "gobmk"
		budget    = 1.3
		threshold = 0.01
	)
	lab, err := mcdvfs.NewLab()
	if err != nil {
		log.Fatal(err)
	}
	res, err := lab.Fig12(bench, budget, threshold)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s at inefficiency budget %.1f, cluster threshold %.0f%%\n\n", bench, budget, threshold*100)
	fmt.Printf("%-18s %10s %14s %10s %12s\n", "space", "settings", "mean cluster", "regions", "mean length")
	fmt.Printf("%-18s %10d %14.1f %10d %12.1f\n", "coarse (100MHz)",
		res.Coarse.Settings, res.Coarse.MeanClusterSize, res.Coarse.Regions, res.Coarse.MeanRegionLen)
	fmt.Printf("%-18s %10d %14.1f %10d %12.1f\n", "fine (30/40MHz)",
		res.Fine.Settings, res.Fine.MeanClusterSize, res.Fine.Regions, res.Fine.MeanRegionLen)
	fmt.Printf("\nfine-grid optimal-tracking performance gain (free tuning): %.2f%%\n", res.PerfGainPct)
	fmt.Println("\nThe paper's conclusion: the balance between tuning overhead and the")
	fmt.Println("energy-performance gain decides the right search-space size — fine")
	fmt.Println("steps buy little performance but multiply the search cost.")
}
