// Quickstart: collect a characterization grid for one benchmark, compute
// the inefficiency metric, and pick optimal settings under an energy
// constraint — the library's core loop in ~50 lines.
package main

import (
	"fmt"
	"log"

	"mcdvfs"
)

func main() {
	// Sweep gobmk across the paper's 70-setting space (10 CPU x 7 memory
	// frequencies) on the simulated platform.
	grid, err := mcdvfs.Collect("gobmk", mcdvfs.CoarseSpace())
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := mcdvfs.Analyze(grid)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark: %s (%d samples x %d settings)\n",
		grid.Benchmark, grid.NumSamples(), grid.NumSettings())
	fmt.Printf("Imax (largest whole-run inefficiency): %.2f\n\n", analysis.MaxInefficiency())

	// Whole-run inefficiency and speedup at the extreme settings: the
	// paper's headline observation is that BOTH waste energy.
	space := mcdvfs.CoarseSpace()
	for _, st := range []mcdvfs.Setting{space.Min(), space.Max()} {
		id, _ := space.ID(st)
		fmt.Printf("pinned at %-14v inefficiency %.2f, speedup %.2fx\n",
			st, analysis.RunInefficiency(id), analysis.RunSpeedup(id))
	}
	fmt.Println()

	// Per-sample optimal settings under an inefficiency budget of 1.3:
	// the best-performing setting that burns at most 30% more energy than
	// the most efficient execution of the same work.
	const budget = 1.3
	fmt.Printf("first 10 samples, optimal setting under inefficiency budget %.1f:\n", budget)
	for s := 0; s < 10 && s < grid.NumSamples(); s++ {
		k, err := analysis.OptimalSetting(s, budget)
		if err != nil {
			log.Fatal(err)
		}
		m := grid.At(s, k)
		fmt.Printf("  sample %2d: %-14v (CPI %.2f, MPKI %5.1f, inefficiency %.2f)\n",
			s, grid.Setting(k), m.CPI, m.MPKI, analysis.Inefficiency(s, k))
	}

	// Tracking the optimal every sample is expensive; stable regions show
	// how long one setting can be held with a 5% performance allowance.
	regions, err := analysis.StableRegions(budget, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstable regions at budget %.1f, threshold 5%%: %d regions over %d samples (%d transitions)\n",
		budget, len(regions), grid.NumSamples(), len(regions)-1)
}
