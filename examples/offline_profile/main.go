// Offline profile: the complete Section VII pipeline — characterize once,
// build a stable-region profile, persist it, and replay it at runtime with
// zero search cost, with a drift-triggered fallback for safety.
package main

import (
	"bytes"
	"fmt"
	"log"

	"mcdvfs"
	"mcdvfs/internal/governor"
	"mcdvfs/internal/profile"
	"mcdvfs/internal/sim"
	"mcdvfs/internal/workload"
)

func main() {
	const (
		bench     = "milc"
		budget    = 1.3
		threshold = 0.05
	)

	// 1. Offline: characterize and profile.
	grid, err := mcdvfs.Collect(bench, mcdvfs.CoarseSpace())
	if err != nil {
		log.Fatal(err)
	}
	prof, err := profile.Build(grid, budget, threshold)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %s: %d samples -> %d stable regions\n", bench, prof.NumSamples(), len(prof.Regions))

	// 2. Persist and reload (what would ship with the application).
	var stored bytes.Buffer
	if err := prof.WriteJSON(&stored); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profile size on disk: %d bytes\n\n", stored.Len())
	loaded, err := profile.ReadJSON(&stored)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Runtime: replay the profile against the application, with a
	// budget-governor fallback in case the workload drifts.
	model, err := governor.NewSimModel()
	if err != nil {
		log.Fatal(err)
	}
	fallback, err := governor.NewBudget(governor.BudgetConfig{
		Budget: budget, Threshold: threshold,
		Space: mcdvfs.CoarseSpace(), Model: model,
		Search: governor.FromPrevious,
	})
	if err != nil {
		log.Fatal(err)
	}
	profGov, err := profile.NewGovernor(loaded, fallback, 0.5)
	if err != nil {
		log.Fatal(err)
	}

	sys, err := sim.New(sim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	specs := workload.MustByName(bench).MustRealize()

	searchGov, err := governor.NewBudget(governor.BudgetConfig{
		Budget: budget, Threshold: threshold,
		Space: mcdvfs.CoarseSpace(), Model: model,
		Search: governor.FromMax,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %10s %10s %8s %8s %14s\n",
		"policy", "time (ms)", "mJ", "trans", "tunes", "overhead (ms)")
	for _, gv := range []governor.Governor{profGov, searchGov} {
		res, err := governor.Run(sys, specs, gv, governor.DefaultOverhead())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %10.1f %10.1f %8d %8d %14.2f\n",
			res.Governor, res.TimeNS/1e6, res.EnergyJ*1e3,
			res.Transitions, res.Tunes, res.OverheadNS/1e6)
	}
	fmt.Printf("\nfallback intervals during replay: %d (same application, so ~none)\n",
		profGov.FallbackIntervals())
	fmt.Println("The profile replay pays no search overhead at all: tuning work moved")
	fmt.Println("offline, exactly the paper's Section VII proposal.")
}
