// Priority budgets: the paper's Section II-A proposes that "the OS can
// also set the inefficiency budget based on application's priority,
// allowing the higher priority applications to burn more energy than lower
// priority applications."
//
// This example plays an OS that hosts a foreground app (user-facing,
// high priority) and a background app (low priority) and assigns them
// different inefficiency budgets. Because inefficiency is relative to each
// application's own Emin, one policy knob works for both applications
// without knowing either one's absolute energy needs — the property that
// makes the metric practical.
package main

import (
	"fmt"
	"log"

	"mcdvfs"
)

type app struct {
	name     string
	bench    string
	priority string
	budget   float64
}

func main() {
	apps := []app{
		{"video-game (foreground)", "gobmk", "high", 1.5},
		{"photo-indexer (background)", "milc", "low", 1.1},
	}

	sys, err := mcdvfs.NewSystem(mcdvfs.DefaultSystemConfig())
	if err != nil {
		log.Fatal(err)
	}
	space := mcdvfs.CoarseSpace()
	model, err := mcdvfs.NewGovernorModel()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %-8s %-7s %10s %11s %8s %9s\n",
		"application", "priority", "budget", "time (ms)", "energy (mJ)", "ineff", "vs I=inf")
	for _, a := range apps {
		gov, err := mcdvfs.NewBudgetGovernor(mcdvfs.BudgetGovernorConfig{
			Budget:    a.budget,
			Threshold: 0.03,
			Space:     space,
			Model:     model,
			Search:    mcdvfs.FromPrevious,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := mcdvfs.RunGovernor(sys, a.bench, gov, mcdvfs.DefaultGovernorOverhead())
		if err != nil {
			log.Fatal(err)
		}

		// References: the application's own Emin and its unconstrained
		// (performance-governor) run.
		grid, err := mcdvfs.CollectOn(sys, a.bench, space)
		if err != nil {
			log.Fatal(err)
		}
		emin := -1.0
		for k := 0; k < grid.NumSettings(); k++ {
			if e := grid.TotalEnergyJ(mcdvfs.SettingID(k)); emin < 0 || e < emin {
				emin = e
			}
		}
		perf, err := mcdvfs.RunGovernor(sys, a.bench, mcdvfs.NewPerformanceGovernor(space), mcdvfs.DefaultGovernorOverhead())
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-28s %-8s %-7.1f %10.1f %11.1f %8.2f %8.2fx\n",
			a.name, a.priority, a.budget,
			res.TimeNS/1e6, res.EnergyJ*1e3, res.EnergyJ/emin,
			res.TimeNS/perf.TimeNS)
	}
	fmt.Println("\nOne knob, two applications: the foreground app spends up to 50% extra")
	fmt.Println("energy for responsiveness while the background app stays near its most")
	fmt.Println("efficient point — no absolute energy numbers were configured anywhere.")
}
