// Budgeted governor: run online frequency governors — the scenario the
// paper's introduction motivates, a battery-constrained device that must
// deliver the best performance it can within an energy budget.
//
// The example compares the Linux-style static governors against the
// paper-inspired inefficiency-budget governor in three variants:
// CoScale-style restart-from-max search, start-from-previous search, and
// start-from-previous with stable-region-length prediction.
package main

import (
	"fmt"
	"log"

	"mcdvfs"
)

func main() {
	const (
		bench     = "milc"
		budget    = 1.3
		threshold = 0.03
	)
	sys, err := mcdvfs.NewSystem(mcdvfs.DefaultSystemConfig())
	if err != nil {
		log.Fatal(err)
	}
	space := mcdvfs.CoarseSpace()
	model, err := mcdvfs.NewGovernorModel()
	if err != nil {
		log.Fatal(err)
	}

	mkBudget := func(search mcdvfs.SearchStart, stability bool) mcdvfs.Governor {
		gov, err := mcdvfs.NewBudgetGovernor(mcdvfs.BudgetGovernorConfig{
			Budget:         budget,
			Threshold:      threshold,
			Space:          space,
			Model:          model,
			Search:         search,
			UseStability:   stability,
			DriftTolerance: 0.25,
		})
		if err != nil {
			log.Fatal(err)
		}
		return gov
	}

	governors := []mcdvfs.Governor{
		mcdvfs.NewPerformanceGovernor(space),
		mcdvfs.NewPowersaveGovernor(space),
		mkBudget(mcdvfs.FromMax, false),
		mkBudget(mcdvfs.FromPrevious, false),
		mkBudget(mcdvfs.FromPrevious, true),
	}

	// Whole-run Emin reference so achieved inefficiency can be reported.
	grid, err := mcdvfs.CollectOn(sys, bench, space)
	if err != nil {
		log.Fatal(err)
	}
	emin := -1.0
	for k := 0; k < grid.NumSettings(); k++ {
		if e := grid.TotalEnergyJ(mcdvfs.SettingID(k)); emin < 0 || e < emin {
			emin = e
		}
	}

	fmt.Printf("benchmark %s, inefficiency budget %.1f, cluster threshold %.0f%%\n\n",
		bench, budget, threshold*100)
	fmt.Printf("%-32s %9s %9s %6s %6s %6s %10s\n",
		"governor", "time(ms)", "mJ", "ineff", "trans", "tunes", "sched/tune")
	for _, gov := range governors {
		res, err := mcdvfs.RunGovernor(sys, bench, gov, mcdvfs.DefaultGovernorOverhead())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s %9.1f %9.1f %6.2f %6d %6d %10.1f\n",
			res.Governor, res.TimeNS/1e6, res.EnergyJ*1e3, res.EnergyJ/emin,
			res.Transitions, res.Tunes, res.AvgSearchedPerTune())
	}
	fmt.Println("\nThe budget governors deliver most of the performance governor's speed")
	fmt.Println("while respecting the energy budget; the from-previous search evaluates")
	fmt.Println("far fewer settings per tune, and stability prediction skips whole tunes.")
}
