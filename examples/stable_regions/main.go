// Stable regions: offline profiling of a memory-streaming workload (lbm),
// the paper's Section VII "offline analysis" use case. The profile —
// region boundaries, lengths, and the settings valid inside each region —
// is what a production system would ship alongside an application so the
// runtime can tune only at region boundaries.
package main

import (
	"fmt"
	"log"

	"mcdvfs"
)

func main() {
	const (
		bench     = "lbm"
		budget    = 1.3
		threshold = 0.05
	)
	grid, err := mcdvfs.Collect(bench, mcdvfs.CoarseSpace())
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := mcdvfs.Analyze(grid)
	if err != nil {
		log.Fatal(err)
	}
	regions, err := analysis.StableRegions(budget, threshold)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s profile: inefficiency budget %.1f, cluster threshold %.0f%%\n",
		bench, budget, threshold*100)
	fmt.Printf("%d samples -> %d stable regions (%d transitions)\n\n",
		grid.NumSamples(), len(regions), len(regions)-1)
	fmt.Printf("%-8s %-12s %-8s %-15s %s\n", "region", "samples", "length", "setting", "alternatives")
	for i, r := range regions {
		fmt.Printf("%-8d [%3d, %3d]   %-8d %-15v %d\n",
			i, r.Start, r.End, r.Len(), grid.Setting(r.Choice), len(r.Avail))
	}

	// Compare the profiled schedule against per-sample optimal tracking,
	// with the paper's tuning overhead (500 µs + 30 µJ per tune).
	tr, err := analysis.EvaluateTradeoff(budget, threshold, mcdvfs.DefaultOverhead())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvs per-sample optimal tracking:\n")
	fmt.Printf("  transitions:             %d -> %d\n", tr.OptimalTransitions, tr.RegionTransitions)
	fmt.Printf("  perf delta (no overhead):   %+.2f%%\n", -tr.PerfDegradationPct)
	fmt.Printf("  perf delta (with overhead): %+.2f%%\n", -tr.PerfDegradationWithOverheadPct)
	fmt.Printf("  energy delta (with overhead): %+.2f%%\n", tr.EnergyDeltaWithOverheadPct)
}
