module mcdvfs

go 1.22
