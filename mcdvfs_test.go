package mcdvfs

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

func TestFacadeCollectAnalyze(t *testing.T) {
	g, err := Collect("gobmk", CoarseSpace())
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if g.NumSettings() != 70 {
		t.Errorf("settings = %d, want 70", g.NumSettings())
	}
	a, err := Analyze(g)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	best, err := a.OptimalSetting(0, 1.3)
	if err != nil {
		t.Fatalf("OptimalSetting: %v", err)
	}
	st := g.Setting(best)
	if st.CPU < 100 || st.CPU > 1000 || st.Mem < 200 || st.Mem > 800 {
		t.Errorf("optimal setting %v outside platform range", st)
	}
	regions, err := a.StableRegions(1.3, 0.05)
	if err != nil {
		t.Fatalf("StableRegions: %v", err)
	}
	if len(regions) == 0 {
		t.Error("no stable regions")
	}
}

func TestFacadeBenchmarkRegistry(t *testing.T) {
	if len(Benchmarks()) < 14 {
		t.Errorf("suite size %d", len(Benchmarks()))
	}
	if len(HeadlineBenchmarks()) != 6 {
		t.Errorf("headline count %d", len(HeadlineBenchmarks()))
	}
	if _, err := BenchmarkByName("lbm"); err != nil {
		t.Errorf("BenchmarkByName: %v", err)
	}
	if _, err := BenchmarkByName("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 20 {
		t.Errorf("experiment count = %d, want 20", len(exps))
	}
	e, err := ExperimentByID("fig12")
	if err != nil {
		t.Fatalf("ExperimentByID: %v", err)
	}
	if e.Description == "" {
		t.Error("empty description")
	}
	if _, err := ExperimentByID("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFacadeRunExperiment(t *testing.T) {
	lab, err := NewLab()
	if err != nil {
		t.Fatal(err)
	}
	e, err := ExperimentByID("fig12")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Run(lab, &buf); err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 12") || !strings.Contains(out, "496") {
		t.Errorf("unexpected fig12 output:\n%s", out)
	}
}

func TestFacadeSystemConfig(t *testing.T) {
	cfg := DefaultSystemConfig()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := CollectOn(sys, "bzip2", CoarseSpace())
	if err != nil {
		t.Fatal(err)
	}
	if g.Benchmark != "bzip2" {
		t.Errorf("grid benchmark %q", g.Benchmark)
	}
}

func TestFacadeCollectContextWorkerEquivalence(t *testing.T) {
	sys, err := NewSystem(DefaultSystemConfig())
	if err != nil {
		t.Fatal(err)
	}
	serial, err := CollectOnContext(context.Background(), sys, "milc", CoarseSpace(), CollectOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := CollectOnContext(context.Background(), sys, "milc", CoarseSpace(), CollectOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	var bs, bp bytes.Buffer
	if err := serial.WriteJSON(&bs); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteJSON(&bp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bs.Bytes(), bp.Bytes()) {
		t.Error("parallel façade collection differs from serial")
	}
}

func TestFacadeCollectContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CollectContext(ctx, "gobmk", FineSpace(), CollectOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestFacadeLabOptions(t *testing.T) {
	dir := t.TempDir()
	lab, err := NewLab(WithWorkers(2), WithGridCacheDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lab.GridContext(context.Background(), "bzip2"); err != nil {
		t.Fatalf("GridContext: %v", err)
	}
	// A second lab over the same cache directory reloads the stored grid.
	lab2, err := NewLab(WithGridCacheDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	g, err := lab2.Grid("bzip2")
	if err != nil {
		t.Fatalf("cached Grid: %v", err)
	}
	if g.Benchmark != "bzip2" {
		t.Errorf("grid benchmark %q", g.Benchmark)
	}
}

func TestDefaultOverheadValues(t *testing.T) {
	oh := DefaultOverhead()
	if oh.TimeNS != 500_000 || oh.EnergyJ != 30e-6 {
		t.Errorf("overhead = %+v", oh)
	}
}
