package mcdvfs_test

// Full-pipeline integration test over the public façade: characterize ->
// analyze -> profile -> replay -> verify the end-to-end invariants that
// tie the layers together. Everything here goes through the exported API
// only (package mcdvfs_test), so it doubles as a check that the façade is
// complete enough to build a real application on.

import (
	"bytes"
	"math"
	"testing"

	"mcdvfs"
)

func TestEndToEndPipeline(t *testing.T) {
	const (
		bench     = "milc"
		budget    = 1.3
		threshold = 0.05
	)

	// 1. Characterize.
	grid, err := mcdvfs.Collect(bench, mcdvfs.CoarseSpace())
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	var buf bytes.Buffer
	if err := grid.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}

	// 2. Analyze.
	a, err := mcdvfs.Analyze(grid)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}

	// 3. Offline schedule construction and evaluation.
	optSch, err := a.OptimalSchedule(budget)
	if err != nil {
		t.Fatalf("OptimalSchedule: %v", err)
	}
	regions, err := a.StableRegions(budget, threshold)
	if err != nil {
		t.Fatalf("StableRegions: %v", err)
	}
	tr, err := a.EvaluateTradeoff(budget, threshold, mcdvfs.DefaultOverhead())
	if err != nil {
		t.Fatalf("EvaluateTradeoff: %v", err)
	}

	// Cross-layer invariants.
	if optSch.Transitions() < len(regions)-1 {
		t.Errorf("optimal tracking (%d transitions) below region schedule (%d)",
			optSch.Transitions(), len(regions)-1)
	}
	bound := threshold * 100 / (1 - threshold)
	if tr.PerfDegradationPct > bound || tr.PerfDegradationPct < -(bound+1) {
		t.Errorf("degradation %.2f%% outside band ±%.2f%%", tr.PerfDegradationPct, bound)
	}

	// 4. Online: the budget governor must land in the same neighbourhood
	// as the offline optimal schedule.
	sys, err := mcdvfs.NewSystem(mcdvfs.DefaultSystemConfig())
	if err != nil {
		t.Fatal(err)
	}
	model, err := mcdvfs.NewGovernorModel()
	if err != nil {
		t.Fatal(err)
	}
	gov, err := mcdvfs.NewBudgetGovernor(mcdvfs.BudgetGovernorConfig{
		Budget:    budget,
		Threshold: threshold,
		Space:     mcdvfs.CoarseSpace(),
		Model:     model,
		Search:    mcdvfs.FromMax,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mcdvfs.RunGovernor(sys, bench, gov, mcdvfs.DefaultGovernorOverhead())
	if err != nil {
		t.Fatalf("RunGovernor: %v", err)
	}

	offline, err := a.Execute(optSch, mcdvfs.Overhead{})
	if err != nil {
		t.Fatal(err)
	}
	// The online governor decides from the *previous* interval and pays
	// overhead, so it trails the clairvoyant offline schedule — but must
	// stay within a sane factor.
	if res.TimeNS < offline.TimeNS*0.95 {
		t.Errorf("online governor (%.0f ms) beat the clairvoyant schedule (%.0f ms)",
			res.TimeNS/1e6, offline.TimeNS/1e6)
	}
	if res.TimeNS > offline.TimeNS*1.30 {
		t.Errorf("online governor (%.0f ms) trails the offline schedule (%.0f ms) by >30%%",
			res.TimeNS/1e6, offline.TimeNS/1e6)
	}

	// 5. The grid round-trips and re-analyzes identically.
	grid2 := mustReadGrid(t, &buf)
	a2, err := mcdvfs.Analyze(grid2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a2.MaxInefficiency()-a.MaxInefficiency()) > 1e-12 {
		t.Error("Imax changed across grid serialization")
	}
	sch2, err := a2.OptimalSchedule(budget)
	if err != nil {
		t.Fatal(err)
	}
	for i := range optSch {
		if optSch[i] != sch2[i] {
			t.Fatalf("schedule diverged after round trip at sample %d", i)
		}
	}
}

func mustReadGrid(t *testing.T, buf *bytes.Buffer) *mcdvfs.Grid {
	t.Helper()
	g, err := mcdvfs.ReadGridJSON(buf)
	if err != nil {
		t.Fatalf("ReadGridJSON: %v", err)
	}
	return g
}
