// Command mcdvfs regenerates the paper's evaluation figures.
//
// Usage:
//
//	mcdvfs list                          list available experiments
//	mcdvfs [flags] run <id>...           run one or more experiments (e.g. fig8)
//	mcdvfs [flags] all                   run every experiment in paper order
//
// Flags:
//
//	-workers N      collection worker-pool size (0 = all cores)
//	-gridcache DIR  persist collected grids to DIR and reuse them across runs
//
// Each experiment prints aligned text tables reproducing the corresponding
// figure of the paper.
package main

import (
	"flag"
	"fmt"
	"os"

	"mcdvfs"
)

func main() {
	workers := flag.Int("workers", 0, "collection worker-pool size (0 = all cores)")
	gridCache := flag.String("gridcache", "", "directory for the persistent grid cache (empty = disabled)")
	flag.Usage = func() { usage() }
	flag.Parse()

	var opts []mcdvfs.LabOption
	if *workers != 0 {
		opts = append(opts, mcdvfs.WithWorkers(*workers))
	}
	if *gridCache != "" {
		opts = append(opts, mcdvfs.WithGridCacheDir(*gridCache))
	}
	if err := run(flag.Args(), opts); err != nil {
		fmt.Fprintln(os.Stderr, "mcdvfs:", err)
		os.Exit(1)
	}
}

func run(args []string, labOpts []mcdvfs.LabOption) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing command")
	}
	switch args[0] {
	case "list":
		for _, e := range mcdvfs.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Description)
		}
		return nil
	case "workloads":
		fmt.Printf("%-12s %-5s %8s %9s %10s %10s\n",
			"benchmark", "class", "samples", "instr (B)", "mean CPI*", "mean MPKI")
		for _, name := range mcdvfs.Benchmarks() {
			b, err := mcdvfs.BenchmarkByName(name)
			if err != nil {
				return err
			}
			var cpi, mpki float64
			specs, err := b.Realize()
			if err != nil {
				return err
			}
			for _, s := range specs {
				cpi += s.BaseCPI
				mpki += s.MPKI
			}
			n := float64(len(specs))
			fmt.Printf("%-12s %-5s %8d %9.2f %10.2f %10.1f\n",
				b.Name, b.Class, b.NumSamples(), float64(b.Instructions())/1e9, cpi/n, mpki/n)
		}
		fmt.Println("\n* base CPI (all hits on-chip), before memory stalls")
		return nil
	case "run":
		if len(args) < 2 {
			return fmt.Errorf("run: need at least one experiment id")
		}
		lab, err := mcdvfs.NewLab(labOpts...)
		if err != nil {
			return err
		}
		for _, id := range args[1:] {
			e, err := mcdvfs.ExperimentByID(id)
			if err != nil {
				return err
			}
			if err := e.Run(lab, os.Stdout); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			fmt.Println()
		}
		return nil
	case "all":
		lab, err := mcdvfs.NewLab(labOpts...)
		if err != nil {
			return err
		}
		for _, e := range mcdvfs.Experiments() {
			fmt.Printf("### %s — %s\n\n", e.ID, e.Description)
			if err := e.Run(lab, os.Stdout); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			fmt.Println()
		}
		return nil
	case "-h", "--help", "help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  mcdvfs list                  list available experiments
  mcdvfs workloads             list the benchmark suite
  mcdvfs [flags] run <id>...   run experiments by id (fig2..fig12, extensions)
  mcdvfs [flags] all           run every experiment

flags:
  -workers N      collection worker-pool size (0 = all cores)
  -gridcache DIR  persist collected grids to DIR and reuse across runs`)
}
