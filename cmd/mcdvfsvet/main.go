// Command mcdvfsvet runs the repository's domain-invariant analyzer suite
// (internal/analysis): determinism (including purity summaries that trace
// entropy through helper calls), interprocedural unit safety, float
// equality, context discipline, lock hygiene, goroutine-leak, lock-order,
// error-flow, the abstract-interpretation checks — rangecheck
// (interval analysis: zero-capable divisors, negative physical quantities
// at call boundaries, provably out-of-range table indices) and nilflow
// (nil-ness analysis: nil map writes, nil dereferences reachable on some
// path, nil arguments to parameters the callee dereferences) — and the
// simulator-core guards: hotpath (functions marked //vet:hotpath, and all
// they statically call, are proven allocation-free — interface boxing,
// escaping composite literals, unproven appends, map/chan/string traffic,
// closures, defers in loops) and owned (values marked //vet:owned must not
// leave their creating goroutine without //vet:transfer). The runtime
// layers get three concurrency checks on a must-held lock dataflow:
// guardedby (each struct field's mutex guard inferred from majority
// access evidence; minority unguarded accesses and writes under RLock
// flagged), atomicmix (fields and package variables accessed both via
// sync/atomic and plainly), and spawnescape (every go statement and
// goroutine-spawning callee audited; captures classified confined,
// synchronized, read-only, or racy-unknown — only the last is reported).
// The physical model carries declarative contracts: contract proves
// //vet:requires / //vet:ensures / //vet:invariant annotations with the
// interval interpreter — ensures on every return path, requires at every
// static call site, invariants across mutating methods.
// It is the `make lint` tier of `make verify`.
//
// Usage:
//
//	mcdvfsvet [flags] [patterns ...]
//
// Patterns default to ./... and follow the go tool's directory forms.
// -waivers inventories every //lint:allow directive in scope (file:line,
// check, reason) and marks the stale ones — waivers whose check no longer
// fires on the waived line. -contracts inventories every well-formed
// //vet:requires / ensures / invariant annotation in scope (file:line, kind,
// target, expression), machine-readable with -json. -write-baseline records the current findings
// as a baseline file; -baseline reads one and fails only on findings it
// does not cover (matched line-insensitively on file/check/message, count-
// aware), which is how CI gates pull requests on introduced diagnostics.
// Exit status: 0 clean, 1 violations found (or stale waivers under
// -waivers), 2 the run itself failed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mcdvfs/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("mcdvfsvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	disable := fs.String("disable", "", "comma-separated check names to skip (see -list)")
	list := fs.Bool("list", false, "list available checks and exit")
	waivers := fs.Bool("waivers", false, "list every //lint:allow waiver in scope and flag stale ones")
	contracts := fs.Bool("contracts", false, "list every //vet: contract annotation in scope")
	workers := fs.Int("workers", 0, "package load/check worker-pool size (0 = all cores)")
	baselinePath := fs.String("baseline", "", "read a baseline file and report only findings it does not cover")
	writeBaseline := fs.String("write-baseline", "", "record the current findings as a baseline file and exit 0")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mcdvfsvet [flags] [patterns ...]\n\nThe mcdvfs domain-invariant analyzer suite. Patterns default to ./...\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.Suite() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stdout, "%-12s %s\n", analysis.LintCheckName, "reject malformed or unknown //lint:allow directives")
		return 0
	}

	disabled := make(map[string]bool)
	for _, name := range strings.Split(*disable, ",") {
		if name = strings.TrimSpace(name); name != "" {
			disabled[name] = true
		}
	}
	known := map[string]bool{analysis.LintCheckName: true}
	for _, a := range analysis.Suite() {
		known[a.Name] = true
	}
	for name := range disabled {
		if !known[name] {
			fmt.Fprintf(stderr, "mcdvfsvet: unknown check %q in -disable (try -list)\n", name)
			return 2
		}
	}

	if *waivers {
		return runWaivers(fs.Args(), *jsonOut, *workers, stdout, stderr)
	}
	if *contracts {
		return runContracts(fs.Args(), *jsonOut, *workers, stdout, stderr)
	}

	diags, err := analysis.Run(analysis.Options{
		Patterns: fs.Args(),
		Disable:  disabled,
		Workers:  *workers,
	})
	if err != nil {
		fmt.Fprintf(stderr, "mcdvfsvet: %v\n", err)
		return 2
	}
	if cwd, err := os.Getwd(); err == nil {
		analysis.RelTo(diags, cwd)
	}

	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err != nil {
			fmt.Fprintf(stderr, "mcdvfsvet: %v\n", err)
			return 2
		}
		werr := analysis.WriteBaseline(f, diags)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "mcdvfsvet: %v\n", werr)
			return 2
		}
		fmt.Fprintf(stderr, "mcdvfsvet: baseline of %d finding(s) written to %s\n", len(diags), *writeBaseline)
		return 0
	}
	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "mcdvfsvet: %v\n", err)
			return 2
		}
		base, err := analysis.ReadBaseline(f)
		_ = f.Close() // read-only; the decode error is the signal
		if err != nil {
			fmt.Fprintf(stderr, "mcdvfsvet: %v\n", err)
			return 2
		}
		absorbed := len(diags)
		diags = base.Filter(diags)
		if absorbed -= len(diags); absorbed > 0 {
			fmt.Fprintf(stderr, "mcdvfsvet: %d baseline finding(s) absorbed\n", absorbed)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "mcdvfsvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(stderr, "mcdvfsvet: %d violation(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// runWaivers implements -waivers: the full inventory of //lint:allow
// directives in scope, stale ones marked. A stale waiver exits 1 — it is a
// suppression with nothing left to suppress, which either hides a future
// regression or documents a fix that deserves deleting its waiver.
func runWaivers(patterns []string, jsonOut bool, workers int, stdout, stderr *os.File) int {
	ws, err := analysis.ListWaivers(analysis.Options{Patterns: patterns, Workers: workers})
	if err != nil {
		fmt.Fprintf(stderr, "mcdvfsvet: %v\n", err)
		return 2
	}
	if cwd, err := os.Getwd(); err == nil {
		analysis.RelWaiversTo(ws, cwd)
	}
	stale := 0
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if ws == nil {
			ws = []analysis.Waiver{}
		}
		if err := enc.Encode(ws); err != nil {
			fmt.Fprintf(stderr, "mcdvfsvet: %v\n", err)
			return 2
		}
		for _, w := range ws {
			if w.Stale {
				stale++
			}
		}
	} else {
		for _, w := range ws {
			mark := ""
			if w.Stale {
				mark = " STALE"
				stale++
			}
			fmt.Fprintf(stdout, "%s:%d: [%s]%s %s\n", w.File, w.Line, w.Check, mark, w.Reason)
		}
		fmt.Fprintf(stderr, "mcdvfsvet: %d waiver(s), %d stale\n", len(ws), stale)
	}
	if stale > 0 {
		return 1
	}
	return 0
}

// runContracts implements -contracts: the machine-readable inventory of
// every well-formed //vet: contract annotation in scope. Malformed
// annotations are ordinary diagnostics of a normal run, so the inventory
// itself never fails — it exits 0 unless the load itself breaks.
func runContracts(patterns []string, jsonOut bool, workers int, stdout, stderr *os.File) int {
	cs, err := analysis.ListContracts(analysis.Options{Patterns: patterns, Workers: workers})
	if err != nil {
		fmt.Fprintf(stderr, "mcdvfsvet: %v\n", err)
		return 2
	}
	if cwd, err := os.Getwd(); err == nil {
		analysis.RelContractsTo(cs, cwd)
	}
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if cs == nil {
			cs = []analysis.Contract{}
		}
		if err := enc.Encode(cs); err != nil {
			fmt.Fprintf(stderr, "mcdvfsvet: %v\n", err)
			return 2
		}
	} else {
		for _, c := range cs {
			fmt.Fprintf(stdout, "%s:%d: [%s] %s: %s\n", c.File, c.Line, c.Kind, c.Target, c.Expr)
		}
		fmt.Fprintf(stderr, "mcdvfsvet: %d contract annotation(s)\n", len(cs))
	}
	return 0
}
