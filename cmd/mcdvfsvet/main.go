// Command mcdvfsvet runs the repository's domain-invariant analyzer suite
// (internal/analysis): determinism, unit safety, float equality, context
// discipline, and lock hygiene. It is the `make lint` tier of `make verify`.
//
// Usage:
//
//	mcdvfsvet [flags] [patterns ...]
//
// Patterns default to ./... and follow the go tool's directory forms.
// Exit status: 0 clean, 1 violations found, 2 the run itself failed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mcdvfs/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("mcdvfsvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	disable := fs.String("disable", "", "comma-separated check names to skip (see -list)")
	list := fs.Bool("list", false, "list available checks and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mcdvfsvet [flags] [patterns ...]\n\nThe mcdvfs domain-invariant analyzer suite. Patterns default to ./...\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.Suite() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stdout, "%-12s %s\n", analysis.LintCheckName, "reject malformed or unknown //lint:allow directives")
		return 0
	}

	disabled := make(map[string]bool)
	for _, name := range strings.Split(*disable, ",") {
		if name = strings.TrimSpace(name); name != "" {
			disabled[name] = true
		}
	}
	known := map[string]bool{analysis.LintCheckName: true}
	for _, a := range analysis.Suite() {
		known[a.Name] = true
	}
	for name := range disabled {
		if !known[name] {
			fmt.Fprintf(stderr, "mcdvfsvet: unknown check %q in -disable (try -list)\n", name)
			return 2
		}
	}

	diags, err := analysis.Run(analysis.Options{
		Patterns: fs.Args(),
		Disable:  disabled,
	})
	if err != nil {
		fmt.Fprintf(stderr, "mcdvfsvet: %v\n", err)
		return 2
	}
	if cwd, err := os.Getwd(); err == nil {
		analysis.RelTo(diags, cwd)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "mcdvfsvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(stderr, "mcdvfsvet: %d violation(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
