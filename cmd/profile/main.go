// Command profile builds and inspects offline stable-region profiles
// (paper Section VII): characterize a benchmark once, store the region
// schedule as JSON, and replay it at runtime with zero search cost.
//
// Usage:
//
//	profile build -bench lbm -budget 1.3 -threshold 0.05 [-workers N] -o lbm.profile.json
//	profile show -i lbm.profile.json
//	profile replay -i lbm.profile.json -bench lbm
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"mcdvfs"
	"mcdvfs/internal/governor"
	"mcdvfs/internal/profile"
	"mcdvfs/internal/sim"
	"mcdvfs/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(1)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = cmdBuild(os.Args[2:])
	case "show":
		err = cmdShow(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	default:
		usage()
		err = fmt.Errorf("unknown command %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "profile:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  profile build -bench <name> [-budget 1.3] [-threshold 0.05] [-workers N] [-o out.json]
  profile show -i profile.json
  profile replay -i profile.json -bench <name>`)
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	bench := fs.String("bench", "", "benchmark name")
	budget := fs.Float64("budget", 1.3, "inefficiency budget")
	threshold := fs.Float64("threshold", 0.05, "cluster threshold")
	workers := fs.Int("workers", 0, "collection worker-pool size (0 = all cores)")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bench == "" {
		return fmt.Errorf("missing -bench")
	}
	grid, err := mcdvfs.CollectContext(context.Background(), *bench, mcdvfs.CoarseSpace(),
		mcdvfs.CollectOptions{Workers: *workers})
	if err != nil {
		return err
	}
	if grid.ConvergenceFailures > 0 {
		fmt.Fprintf(os.Stderr, "profile: warning: %d cells did not converge within solver tolerance; the grid carries their last iterates\n",
			grid.ConvergenceFailures)
	}
	p, err := profile.Build(grid, *budget, *threshold)
	if err != nil {
		return err
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := p.WriteJSON(f); err != nil {
			_ = f.Close() // the write error takes precedence
			return err
		}
		return f.Close()
	}
	return p.WriteJSON(os.Stdout)
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	in := fs.String("i", "", "profile file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := load(*in)
	if err != nil {
		return err
	}
	fmt.Printf("benchmark %s, budget %.2f, threshold %.0f%%, %d samples, %d regions\n",
		p.Benchmark, p.Budget, p.Threshold*100, p.NumSamples(), len(p.Regions))
	for i, r := range p.Regions {
		fmt.Printf("  region %2d [%3d,%3d] %-15v cpi %.2f mpki %.1f\n",
			i, r.Start, r.End, r.Setting, r.ExpectedCPI, r.ExpectedMPKI)
	}
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "", "profile file")
	bench := fs.String("bench", "", "benchmark to run under the profile")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := load(*in)
	if err != nil {
		return err
	}
	if *bench == "" {
		return fmt.Errorf("missing -bench")
	}
	b, err := workload.ByName(*bench)
	if err != nil {
		return err
	}
	specs, err := b.Realize()
	if err != nil {
		return err
	}
	gov, err := profile.NewGovernor(p, nil, 0)
	if err != nil {
		return err
	}
	sys, err := sim.New(sim.DefaultConfig())
	if err != nil {
		return err
	}
	res, err := governor.Run(sys, specs, gov, governor.DefaultOverhead())
	if err != nil {
		return err
	}
	fmt.Printf("replayed %s on %s: %.1f ms, %.1f mJ, %d transitions, zero search cost\n",
		p.Benchmark, *bench, res.TimeNS/1e6, res.EnergyJ*1e3, res.Transitions)
	return nil
}

func load(path string) (*profile.Profile, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -i")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:allow errflow read-only file; a close error after a successful read carries no data loss
	defer f.Close()
	return profile.ReadJSON(f)
}
