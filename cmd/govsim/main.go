// Command govsim runs an online governor against a benchmark and reports
// the end-to-end outcome: time, energy, achieved inefficiency, transitions,
// tuning events, and search work.
//
// Usage:
//
//	govsim -bench gobmk -gov budget -budget 1.3 -threshold 0.03 -search prev
//	govsim -bench lbm -gov performance
//
// SIGINT/SIGTERM (or an elapsed -timeout) cancels the reference-grid
// collection cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"mcdvfs"
	"mcdvfs/internal/cliutil"
)

func main() {
	bench := flag.String("bench", "gobmk", "benchmark name")
	govName := flag.String("gov", "budget", "governor: budget, performance, powersave, userspace")
	budget := flag.Float64("budget", 1.3, "inefficiency budget (budget governor)")
	threshold := flag.Float64("threshold", 0.03, "cluster threshold (budget governor)")
	search := flag.String("search", "max", "search start: max or prev (budget governor)")
	stability := flag.Bool("stability", false, "enable stable-region-length prediction")
	cpu := flag.Float64("cpu", 1000, "CPU MHz (userspace governor)")
	mem := flag.Float64("mem", 800, "memory MHz (userspace governor)")
	timeout := cliutil.TimeoutFlag(nil)
	flag.Parse()

	ctx, stop := cliutil.Context(*timeout)
	defer stop()
	if err := run(ctx, *bench, *govName, *budget, *threshold, *search, *stability, *cpu, *mem); err != nil {
		fmt.Fprintln(os.Stderr, "govsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, bench, govName string, budget, threshold float64, search string, stability bool, cpu, mem float64) error {
	space := mcdvfs.CoarseSpace()
	var gov mcdvfs.Governor
	switch govName {
	case "performance":
		gov = mcdvfs.NewPerformanceGovernor(space)
	case "powersave":
		gov = mcdvfs.NewPowersaveGovernor(space)
	case "userspace":
		gov = mcdvfs.NewUserspaceGovernor(mcdvfs.Setting{CPU: mcdvfs.MHz(cpu), Mem: mcdvfs.MHz(mem)})
	case "budget":
		model, err := mcdvfs.NewGovernorModel()
		if err != nil {
			return err
		}
		start := mcdvfs.FromMax
		if search == "prev" {
			start = mcdvfs.FromPrevious
		} else if search != "max" {
			return fmt.Errorf("unknown search %q (use max or prev)", search)
		}
		gov, err = mcdvfs.NewBudgetGovernor(mcdvfs.BudgetGovernorConfig{
			Budget:         budget,
			Threshold:      threshold,
			Space:          space,
			Model:          model,
			Search:         start,
			UseStability:   stability,
			DriftTolerance: 0.25,
		})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown governor %q", govName)
	}

	sys, err := mcdvfs.NewSystem(mcdvfs.DefaultSystemConfig())
	if err != nil {
		return err
	}
	res, err := mcdvfs.RunGovernor(sys, bench, gov, mcdvfs.DefaultGovernorOverhead())
	if err != nil {
		return err
	}

	// Whole-run Emin reference for the achieved-inefficiency report.
	grid, err := mcdvfs.CollectOnContext(ctx, sys, bench, space, mcdvfs.CollectOptions{})
	if err != nil {
		return err
	}
	emin := -1.0
	for k := 0; k < grid.NumSettings(); k++ {
		e := grid.TotalEnergyJ(mcdvfs.SettingID(k))
		if emin < 0 || e < emin {
			emin = e
		}
	}

	fmt.Printf("benchmark          %s\n", bench)
	fmt.Printf("governor           %s\n", res.Governor)
	fmt.Printf("time               %.2f ms\n", res.TimeNS/1e6)
	fmt.Printf("energy             %.2f mJ\n", res.EnergyJ*1e3)
	fmt.Printf("inefficiency       %.3f (vs pinned-setting Emin)\n", res.EnergyJ/emin)
	fmt.Printf("transitions        %d\n", res.Transitions)
	fmt.Printf("tunes              %d\n", res.Tunes)
	fmt.Printf("settings searched  %d (%.1f per tune)\n", res.SettingsSearched, res.AvgSearchedPerTune())
	fmt.Printf("governor overhead  %.2f ms, %.1f µJ\n", res.OverheadNS/1e6, res.OverheadJ*1e6)
	return nil
}
