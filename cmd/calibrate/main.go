// Command calibrate prints the calibration summary of the simulated
// platform: per-benchmark Imax, inefficiency at the slowest and fastest
// settings, the Emin setting, optimal-tracking transition rates, and
// stable-region counts. This is the table used to verify the platform
// against the paper's reported shapes (see DESIGN.md §3 and
// EXPERIMENTS.md).
package main

import (
	"fmt"
	"os"

	"mcdvfs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}

func run() error {
	space := mcdvfs.CoarseSpace()
	minID, _ := space.ID(space.Min())
	maxID, _ := space.ID(space.Max())
	fmt.Printf("%-11s %6s %7s %7s %9s %12s %8s %8s %8s\n",
		"benchmark", "Imax", "I(slow)", "I(fast)", "Emin@", "optT/Binstr", "reg(1%)", "reg(3%)", "reg(5%)")
	for _, name := range mcdvfs.HeadlineBenchmarks() {
		g, err := mcdvfs.Collect(name, space)
		if err != nil {
			return err
		}
		if g.ConvergenceFailures > 0 {
			fmt.Fprintf(os.Stderr, "calibrate: warning: %s: %d cells did not converge within solver tolerance; the grid carries their last iterates\n",
				name, g.ConvergenceFailures)
		}
		a, err := mcdvfs.Analyze(g)
		if err != nil {
			return err
		}
		bestK, bestE := mcdvfs.SettingID(0), -1.0
		for k := 0; k < g.NumSettings(); k++ {
			if e := g.TotalEnergyJ(mcdvfs.SettingID(k)); bestE < 0 || e < bestE {
				bestE, bestK = e, mcdvfs.SettingID(k)
			}
		}
		sch, err := a.OptimalSchedule(1.3)
		if err != nil {
			return err
		}
		regs := make([]int, 0, 3)
		for _, th := range []float64{0.01, 0.03, 0.05} {
			r, err := a.StableRegions(1.3, th)
			if err != nil {
				return err
			}
			regs = append(regs, len(r))
		}
		fmt.Printf("%-11s %6.2f %7.2f %7.2f %9v %12.0f %8d %8d %8d\n",
			name, a.MaxInefficiency(), a.RunInefficiency(minID), a.RunInefficiency(maxID),
			g.Setting(bestK), a.TransitionsPerBillion(sch.Transitions()),
			regs[0], regs[1], regs[2])
	}
	return nil
}
