// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON record. It reads the benchmark run from stdin,
// echoes it unchanged to stdout (the run stays visible in terminals and CI
// logs), and writes the parsed result set to -out.
//
//	go test ./internal/analysis -run '^$' -bench 'BenchmarkVet' -benchmem \
//	    | go run ./cmd/benchjson -out BENCH_vet.json
//
// Each result line
//
//	BenchmarkVet/serial-8   5   212345678 ns/op   123456 B/op   1234 allocs/op
//
// becomes {"name", "procs", "iterations", "ns_per_op", ...}; the goos /
// goarch / pkg / cpu header lines are captured as run metadata, and a
// "meta" block records the collecting environment (go version, GOOS /
// GOARCH, GOMAXPROCS, git commit) for provenance — benchdiff ignores it
// when diffing, so records from different toolchains stay comparable.
// Stdlib only, matching the repo's no-dependency rule.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Meta records the environment the run was collected in. It is carried
// for provenance only: benchdiff compares results by name and never reads
// this block, so records from different commits or toolchains diff
// cleanly.
type Meta struct {
	GoVersion  string `json:"go_version,omitempty"`
	Goos       string `json:"goos,omitempty"`
	Goarch     string `json:"goarch,omitempty"`
	GoMaxProcs int    `json:"gomaxprocs,omitempty"`
	// Commit is the git HEAD at collection time, empty when git or the
	// repository is unavailable (e.g. a source tarball).
	Commit string `json:"commit,omitempty"`
}

// collectMeta snapshots the collecting process's environment.
func collectMeta() Meta {
	m := Meta{
		GoVersion:  runtime.Version(),
		Goos:       runtime.GOOS,
		Goarch:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		m.Commit = strings.TrimSpace(string(out))
	}
	return m
}

// Record is the whole run: environment header plus every result.
type Record struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Meta    Meta     `json:"meta"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("out", "", "path for the JSON record (required)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}

	rec := Record{Meta: collectMeta()}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			rec.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rec.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rec.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rec.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseResult(line); ok {
				rec.Results = append(rec.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	if len(rec.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d result(s) to %s\n", len(rec.Results), *out)
}

// parseResult decodes one benchmark result line. The name's trailing
// "-N" is the GOMAXPROCS suffix the testing package appends.
func parseResult(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Result{}, false
	}
	var r Result
	r.Name = fields[0]
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Procs = p
			r.Name = r.Name[:i]
		}
	}
	iter, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iter
	ns, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return Result{}, false
	}
	r.NsPerOp = ns
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	return r, true
}
