// Command mcdvfsd serves the DVFS decision procedure over HTTP/JSON: grid
// characterization, budget-constrained optimal schedules, and the Emin and
// stability predictors, with request coalescing, admission control, and
// load shedding built in. See DESIGN.md §8 and README "Running the daemon".
//
// Usage:
//
//	mcdvfsd -addr :8080 -pool 2 -queue 8 -lru 16 -gridcache ~/.cache/mcdvfs
//
// SIGINT/SIGTERM drains gracefully: /healthz flips to 503, listeners
// close, and in-flight requests get -drain to finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"mcdvfs/internal/cliutil"
	"mcdvfs/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	poolSize := flag.Int("pool", 2, "concurrent grid collections")
	queueDepth := flag.Int("queue", 8, "admissions waiting behind a full pool before shedding (-1 = none)")
	lruSize := flag.Int("lru", 16, "benchmarks kept characterized (LRU)")
	gridCache := flag.String("gridcache", "", "persistent grid cache directory (empty = memory only)")
	collectWorkers := flag.Int("collect-workers", 0, "worker pool inside one collection (0 = all cores)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown grace period")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on shed (429) responses")
	timeout := cliutil.TimeoutFlag(nil) // here: per-request deadline, not whole-process
	flag.Parse()

	if err := run(*addr, *poolSize, *queueDepth, *lruSize, *gridCache,
		*collectWorkers, *drain, *retryAfter, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "mcdvfsd:", err)
		os.Exit(1)
	}
}

func run(addr string, poolSize, queueDepth, lruSize int, gridCache string,
	collectWorkers int, drain, retryAfter, timeout time.Duration) error {
	srv, err := serve.New(serve.Config{
		CollectWorkers: collectWorkers,
		PoolSize:       poolSize,
		QueueDepth:     queueDepth,
		MaxBenchmarks:  lruSize,
		GridCacheDir:   gridCache,
		RequestTimeout: timeout,
		RetryAfter:     retryAfter,
	})
	if err != nil {
		return err
	}
	ctx, stop := cliutil.Context(0)
	defer stop()

	log.Printf("mcdvfsd listening on %s (pool %d, queue %d, lru %d)", addr, poolSize, queueDepth, lruSize)
	err = srv.Run(ctx, addr, drain)
	switch {
	case err == nil, errors.Is(err, http.ErrServerClosed), errors.Is(err, context.Canceled):
		log.Printf("mcdvfsd drained cleanly")
		return nil
	default:
		return err
	}
}
