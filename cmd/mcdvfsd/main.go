// Command mcdvfsd serves the DVFS decision procedure over HTTP/JSON: grid
// characterization, budget-constrained optimal schedules, and the Emin and
// stability predictors, with request coalescing, admission control, and
// load shedding built in. See DESIGN.md §8 and README "Running the daemon".
//
// Usage:
//
//	mcdvfsd -addr :8080 -pool 2 -queue 8 -lru 16 -gridcache ~/.cache/mcdvfs
//
// Multi-node mode shards the grid keyspace over a consistent-hash ring
// (DESIGN.md §9). Every node gets the same static -peers list and names
// itself with -advertise:
//
//	mcdvfsd -addr :8080 -advertise http://node-a:8080 \
//	        -peers http://node-a:8080,http://node-b:8080,http://node-c:8080
//
// SIGINT/SIGTERM drains gracefully: /healthz flips to 503, listeners
// close, and in-flight requests get -drain to finish. In cluster mode the
// drain is two-phase: the node first refuses newly proxied ring writes
// (with a draining hint, so routers fail over to the next replica) for
// -drain-hint, then closes the listener.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"mcdvfs/internal/cliutil"
	"mcdvfs/internal/cluster"
	"mcdvfs/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	poolSize := flag.Int("pool", 2, "concurrent grid collections")
	queueDepth := flag.Int("queue", 8, "admissions waiting behind a full pool before shedding (-1 = none)")
	lruSize := flag.Int("lru", 16, "benchmarks kept characterized (LRU)")
	gridCache := flag.String("gridcache", "", "persistent grid cache directory (empty = memory only)")
	collectWorkers := flag.Int("collect-workers", 0, "worker pool inside one collection (0 = all cores)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown grace period")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on shed (429) responses")
	peers := flag.String("peers", "", "comma-separated base URLs of every cluster member (empty = single-node)")
	advertise := flag.String("advertise", "", "this node's own base URL; must appear in -peers")
	replicas := flag.Int("replicas", 2, "replica-set size per key, owner included (cluster mode)")
	drainHint := flag.Duration("drain-hint", 250*time.Millisecond,
		"how long a draining node keeps refusing proxied writes before closing the listener (cluster mode)")
	timeout := cliutil.TimeoutFlag(nil) // here: per-request deadline, not whole-process
	flag.Parse()

	serveCfg := serve.Config{
		CollectWorkers: *collectWorkers,
		PoolSize:       *poolSize,
		QueueDepth:     *queueDepth,
		MaxBenchmarks:  *lruSize,
		GridCacheDir:   *gridCache,
		RequestTimeout: *timeout,
		RetryAfter:     *retryAfter,
	}
	err := run(*addr, serveCfg, *peers, *advertise, *replicas, *drain, *drainHint)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcdvfsd:", err)
		os.Exit(1)
	}
}

func run(addr string, serveCfg serve.Config, peers, advertise string, replicas int, drain, drainHint time.Duration) error {
	ctx, stop := cliutil.Context(0)
	defer stop()

	if peers == "" {
		srv, err := serve.New(serveCfg)
		if err != nil {
			return err
		}
		log.Printf("mcdvfsd listening on %s (pool %d, queue %d, lru %d)",
			addr, serveCfg.PoolSize, serveCfg.QueueDepth, serveCfg.MaxBenchmarks)
		return finish(srv.Run(ctx, addr, drain))
	}

	peerMap, err := parsePeers(peers)
	if err != nil {
		return err
	}
	if advertise == "" {
		return fmt.Errorf("cluster mode needs -advertise (this node's URL from the -peers list)")
	}
	node, err := cluster.NewNode(cluster.Config{
		Self:      strings.TrimRight(advertise, "/"),
		Peers:     peerMap,
		Replicas:  replicas,
		DrainHint: drainHint,
		Serve:     serveCfg,
	})
	if err != nil {
		return err
	}
	log.Printf("mcdvfsd listening on %s as %s (ring of %d, %d replicas per key)",
		addr, node.ID(), node.Ring().Len(), replicas)
	return finish(node.Run(ctx, addr, drain))
}

// parsePeers reads the static peer list. In production node IDs are the
// advertise URLs themselves, so the map is URL -> URL.
func parsePeers(spec string) (map[string]string, error) {
	out := make(map[string]string)
	for _, p := range strings.Split(spec, ",") {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p == "" {
			continue
		}
		if !strings.HasPrefix(p, "http://") && !strings.HasPrefix(p, "https://") {
			return nil, fmt.Errorf("peer %q is not an http(s) URL", p)
		}
		out[p] = p
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-peers %q has no usable URLs", spec)
	}
	return out, nil
}

func finish(err error) error {
	switch {
	case err == nil, errors.Is(err, http.ErrServerClosed), errors.Is(err, context.Canceled):
		log.Printf("mcdvfsd drained cleanly")
		return nil
	default:
		return err
	}
}
