// Command sweep collects a characterization grid — the per-sample,
// per-setting time/energy matrix — for one benchmark and writes it as JSON.
//
// Usage:
//
//	sweep -bench gobmk [-space coarse|fine] [-workers N] [-o grid.json]
//	sweep -workload my-app.json            # user-defined workload file
//
// SIGINT/SIGTERM (or an elapsed -timeout) cancels the collection cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"mcdvfs"
	"mcdvfs/internal/cliutil"
	"mcdvfs/internal/sim"
	"mcdvfs/internal/trace"
	"mcdvfs/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "benchmark name (see -list)")
	workloadFile := flag.String("workload", "", "JSON workload definition file (alternative to -bench)")
	space := flag.String("space", "coarse", "setting space: coarse (70) or fine (496)")
	workers := flag.Int("workers", 0, "collection worker-pool size (0 = all cores)")
	out := flag.String("o", "", "output file (default stdout)")
	list := flag.Bool("list", false, "list benchmarks and exit")
	timeout := cliutil.TimeoutFlag(nil)
	flag.Parse()

	ctx, stop := cliutil.Context(*timeout)
	defer stop()
	if err := run(ctx, *bench, *workloadFile, *space, *out, *workers, *list); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, bench, workloadFile, spaceName, out string, workers int, list bool) error {
	if list {
		for _, name := range mcdvfs.Benchmarks() {
			fmt.Println(name)
		}
		return nil
	}
	var space *mcdvfs.Space
	switch spaceName {
	case "coarse":
		space = mcdvfs.CoarseSpace()
	case "fine":
		space = mcdvfs.FineSpace()
	default:
		return fmt.Errorf("unknown space %q", spaceName)
	}

	var grid *mcdvfs.Grid
	switch {
	case workloadFile != "":
		f, err := os.Open(workloadFile)
		if err != nil {
			return err
		}
		b, err := workload.ReadJSON(f)
		_ = f.Close() // read-only; the decode error below is the one that matters
		if err != nil {
			return err
		}
		sys, err := sim.New(sim.DefaultConfig())
		if err != nil {
			return err
		}
		grid, err = trace.CollectContext(ctx, sys, b, space, trace.CollectOptions{Workers: workers})
		if err != nil {
			return err
		}
	case bench != "":
		var err error
		grid, err = mcdvfs.CollectContext(ctx, bench, space, mcdvfs.CollectOptions{Workers: workers})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("missing -bench or -workload (use -list to see built-ins)")
	}
	if grid.ConvergenceFailures > 0 {
		fmt.Fprintf(os.Stderr, "sweep: warning: %d cells did not converge within solver tolerance; the grid carries their last iterates\n",
			grid.ConvergenceFailures)
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := grid.WriteJSON(f); err != nil {
			_ = f.Close() // the write error takes precedence
			return err
		}
		return f.Close()
	}
	return grid.WriteJSON(os.Stdout)
}
