// Command mcdvfsload drives a closed-loop load against a running mcdvfsd
// and reports per-endpoint latency quantiles plus the daemon's own cache
// counters, so coalescing and memoization effectiveness are visible from
// the client side.
//
// Usage:
//
//	mcdvfsload -url http://127.0.0.1:8080 -c 8 -d 10s
//	mcdvfsload -url http://127.0.0.1:8080 -c 64 -n 6400 -seed 1  # deterministic
//
// Multi-target mode drives a cluster: -targets takes every node's URL,
// -policy picks how each request chooses one, and the report's cache
// counters become cluster-wide sums with a per-node collection breakdown
// — the cluster-wide coalescing hit rate is read straight off the run.
//
//	mcdvfsload -targets http://a:8080,http://b:8080,http://c:8080 -policy random -c 64 -n 6400
//
// The exit status is nonzero if any request got a 5xx or failed at the
// transport level, which is what `make loadtest` keys off.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mcdvfs/internal/cliutil"
	"mcdvfs/internal/serve"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "daemon base URL")
	targets := flag.String("targets", "", "comma-separated cluster node URLs (overrides -url)")
	policy := flag.String("policy", serve.PolicyRoundRobin,
		"per-request target selection for -targets: round-robin or random")
	clients := flag.Int("c", 8, "concurrent closed-loop clients")
	duration := flag.Duration("d", 5*time.Second, "run duration (ignored when -n is set)")
	requests := flag.Int("n", 0, "total request budget (deterministic mode; 0 = run for -d)")
	seed := flag.Int64("seed", 1, "base RNG seed (client i uses seed+i)")
	zipf := flag.Float64("zipf", 1.4, "zipf skew of benchmark popularity (>1)")
	mix := flag.String("mix", "", "request mix, e.g. grid=10,optimal=70,stability=10,emin=5,benchmarks=5")
	space := flag.String("space", "coarse", "setting space for grid/optimal requests")
	budget := flag.Float64("budget", 1.3, "inefficiency budget for optimal requests")
	retryAfterMax := flag.Duration("retry-after-max", 2*time.Second,
		"cap on honoring a 429's Retry-After hint (negative = ignore hints)")
	timeout := cliutil.TimeoutFlag(nil)
	flag.Parse()

	if err := run(*url, *targets, *policy, *clients, *duration, *requests,
		*seed, *zipf, *mix, *space, *budget, *retryAfterMax, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "mcdvfsload:", err)
		os.Exit(1)
	}
}

func run(url, targets, policy string, clients int, duration time.Duration, requests int,
	seed int64, zipf float64, mixSpec, space string, budget float64,
	retryAfterMax, timeout time.Duration) error {
	mix, err := parseMix(mixSpec)
	if err != nil {
		return err
	}
	ctx, stop := cliutil.Context(timeout)
	defer stop()

	report, err := serve.RunLoad(ctx, serve.LoadConfig{
		BaseURL:       strings.TrimRight(url, "/"),
		Targets:       parseTargets(targets),
		Policy:        policy,
		Clients:       clients,
		Requests:      requests,
		Duration:      duration,
		Seed:          seed,
		Mix:           mix,
		ZipfS:         zipf,
		Space:         space,
		Budget:        budget,
		RetryAfterMax: retryAfterMax,
	})
	if err != nil {
		return err
	}
	fmt.Print(report)
	if report.Status5xx > 0 || report.TransportErrors > 0 {
		return fmt.Errorf("unhealthy run: %d 5xx, %d transport errors",
			report.Status5xx, report.TransportErrors)
	}
	return nil
}

// parseTargets splits the -targets list; empty entries drop out and an
// empty spec returns nil so RunLoad falls back to -url.
func parseTargets(spec string) []string {
	if spec == "" {
		return nil
	}
	var out []string
	for _, t := range strings.Split(spec, ",") {
		if t = strings.TrimRight(strings.TrimSpace(t), "/"); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// parseMix reads "grid=10,optimal=70,..." into a LoadMix; an empty spec
// selects the default mix.
func parseMix(spec string) (serve.LoadMix, error) {
	var m serve.LoadMix
	if spec == "" {
		return m, nil // zero value defaults inside RunLoad
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return m, fmt.Errorf("bad mix entry %q (want name=weight)", part)
		}
		w, err := strconv.Atoi(v)
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad mix weight %q", part)
		}
		switch k {
		case "grid":
			m.Grid = w
		case "optimal":
			m.Optimal = w
		case "stability":
			m.Stability = w
		case "emin":
			m.Emin = w
		case "benchmarks":
			m.Benchmarks = w
		default:
			return m, fmt.Errorf("unknown mix endpoint %q", k)
		}
	}
	if m.Grid+m.Optimal+m.Stability+m.Emin+m.Benchmarks == 0 {
		return m, fmt.Errorf("mix %q has zero total weight", spec)
	}
	return m, nil
}
