package main

import (
	"regexp"
	"strings"
	"testing"
)

func rec(results ...Result) Record { return Record{Results: results} }

func TestCompareFlagsRegressions(t *testing.T) {
	base := rec(
		Result{Name: "BenchmarkCollect/fine/serial", NsPerOp: 100e6, AllocsPerOp: 100},
		Result{Name: "BenchmarkCollect/fine/workers=4", NsPerOp: 30e6, AllocsPerOp: 120},
		Result{Name: "BenchmarkRemoved", NsPerOp: 5},
	)
	head := rec(
		Result{Name: "BenchmarkCollect/fine/serial", NsPerOp: 125e6, AllocsPerOp: 100},   // +25% ns: regression
		Result{Name: "BenchmarkCollect/fine/workers=4", NsPerOp: 31e6, AllocsPerOp: 125}, // within 10%
		Result{Name: "BenchmarkNew", NsPerOp: 7},
	)
	deltas, onlyBase, onlyHead := compare(base, head, 0.10, nil)
	if len(deltas) != 2 {
		t.Fatalf("deltas = %d, want 2", len(deltas))
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if !byName["BenchmarkCollect/fine/serial"].Regressed {
		t.Error("25% ns/op regression not flagged")
	}
	if byName["BenchmarkCollect/fine/workers=4"].Regressed {
		t.Error("within-threshold change flagged")
	}
	if len(onlyBase) != 1 || onlyBase[0] != "BenchmarkRemoved" {
		t.Errorf("onlyBase = %v", onlyBase)
	}
	if len(onlyHead) != 1 || onlyHead[0] != "BenchmarkNew" {
		t.Errorf("onlyHead = %v", onlyHead)
	}
}

func TestCompareIgnoresMeta(t *testing.T) {
	// Records that differ only in collection provenance — toolchain,
	// commit, GOMAXPROCS — must diff as identical: the gate compares
	// measurements, not environments.
	results := []Result{
		{Name: "BenchmarkCollect/fine/serial", NsPerOp: 100e6, AllocsPerOp: 100},
		{Name: "BenchmarkCollect/fine/workers=4", NsPerOp: 30e6, AllocsPerOp: 120},
	}
	base := rec(results...)
	base.Meta = Meta{GoVersion: "go1.22.1", Goos: "linux", Goarch: "amd64", GoMaxProcs: 8, Commit: "aaaa"}
	head := rec(results...)
	head.Meta = Meta{GoVersion: "go1.23.0", Goos: "darwin", Goarch: "arm64", GoMaxProcs: 4, Commit: "bbbb"}
	deltas, onlyBase, onlyHead := compare(base, head, 0.10, nil)
	if len(onlyBase) != 0 || len(onlyHead) != 0 {
		t.Fatalf("meta-only difference produced asymmetry: onlyBase=%v onlyHead=%v", onlyBase, onlyHead)
	}
	var sb strings.Builder
	if got := report(&sb, deltas, onlyBase, onlyHead, 0.10); got != 0 {
		t.Fatalf("meta-only difference produced %d failure(s):\n%s", got, sb.String())
	}
	for _, d := range deltas {
		if d.Regressed || d.NsRatio != 1 || d.AllocRatio != 1 {
			t.Errorf("meta-only difference moved %s: %+v", d.Name, d)
		}
	}
}

func TestCompareFlagsAllocRegressions(t *testing.T) {
	base := rec(Result{Name: "B", NsPerOp: 100, AllocsPerOp: 10})
	head := rec(Result{Name: "B", NsPerOp: 100, AllocsPerOp: 12})
	deltas, _, _ := compare(base, head, 0.10, nil)
	if !deltas[0].Regressed {
		t.Error("20% allocs/op regression not flagged")
	}
}

func TestCompareZeroAllocBase(t *testing.T) {
	// A zero-alloc benchmark staying zero-alloc must not divide by zero or
	// flag; growing allocations from zero must flag.
	base := rec(Result{Name: "B", NsPerOp: 100, AllocsPerOp: 0})
	stay := rec(Result{Name: "B", NsPerOp: 100, AllocsPerOp: 0})
	grow := rec(Result{Name: "B", NsPerOp: 100, AllocsPerOp: 40})
	if d, _, _ := compare(base, stay, 0.10, nil); d[0].Regressed {
		t.Error("zero->zero allocs flagged")
	}
	if d, _, _ := compare(base, grow, 0.10, nil); !d[0].Regressed {
		t.Error("zero->40 allocs not flagged")
	}
}

func TestCompareFilter(t *testing.T) {
	base := rec(
		Result{Name: "BenchmarkCollect/x", NsPerOp: 100},
		Result{Name: "BenchmarkOther", NsPerOp: 100},
	)
	head := rec(
		Result{Name: "BenchmarkCollect/x", NsPerOp: 500},
		Result{Name: "BenchmarkOther", NsPerOp: 500},
	)
	deltas, _, _ := compare(base, head, 0.10, regexp.MustCompile(`^BenchmarkCollect/`))
	if len(deltas) != 1 || deltas[0].Name != "BenchmarkCollect/x" {
		t.Fatalf("filter leaked: %+v", deltas)
	}
}

func TestReportFailsOnMissingFromHead(t *testing.T) {
	// A benchmark the base measured but the head record dropped must fail
	// the diff with a message naming it: a silently vanished benchmark is a
	// gate that stopped gating.
	base := rec(
		Result{Name: "BenchmarkCollect/fine/serial", NsPerOp: 100e6, AllocsPerOp: 100},
		Result{Name: "BenchmarkCollect/fine/workers=4", NsPerOp: 30e6, AllocsPerOp: 120},
	)
	head := rec(Result{Name: "BenchmarkCollect/fine/serial", NsPerOp: 101e6, AllocsPerOp: 100})
	deltas, ob, oh := compare(base, head, 0.10, nil)
	var sb strings.Builder
	if got := report(&sb, deltas, ob, oh, 0.10); got != 1 {
		t.Fatalf("report returned %d failures, want 1 for the missing benchmark", got)
	}
	out := sb.String()
	if !strings.Contains(out, "BenchmarkCollect/fine/workers=4") || !strings.Contains(out, "missing from head") {
		t.Errorf("missing benchmark not named in failure output: %q", out)
	}
	// Filtered-out names must not fail: scoping the gate is deliberate.
	deltas, ob, oh = compare(base, head, 0.10, regexp.MustCompile(`serial$`))
	sb.Reset()
	if got := report(&sb, deltas, ob, oh, 0.10); got != 0 {
		t.Fatalf("filtered-out missing benchmark still failed: %d\n%s", got, sb.String())
	}
}

func TestReportCountsAndRenders(t *testing.T) {
	base := rec(Result{Name: "B", NsPerOp: 100, AllocsPerOp: 10})
	head := rec(Result{Name: "B", NsPerOp: 150, AllocsPerOp: 10})
	deltas, ob, oh := compare(base, head, 0.10, nil)
	var sb strings.Builder
	if got := report(&sb, deltas, ob, oh, 0.10); got != 1 {
		t.Fatalf("report counted %d regressions, want 1", got)
	}
	if !strings.Contains(sb.String(), "+50.0%") {
		t.Errorf("report missing delta percentage: %q", sb.String())
	}
	// An empty intersection (e.g. the base branch predates the benchmarks)
	// must report zero regressions so CI passes gracefully.
	deltas, ob, oh = compare(rec(), head, 0.10, nil)
	sb.Reset()
	if got := report(&sb, deltas, ob, oh, 0.10); got != 0 {
		t.Fatalf("empty base produced %d regressions", got)
	}
	if !strings.Contains(sb.String(), "only in head") {
		t.Errorf("new benchmark not reported: %q", sb.String())
	}
}
