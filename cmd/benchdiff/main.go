// Command benchdiff compares two benchjson records and fails on
// performance regressions. It is the CI gate for the collection hot path:
// the bench job collects a fresh BENCH record on the head commit, rebuilds
// the base branch's record the same way, and benchdiff refuses >threshold
// regressions of ns/op or allocs/op.
//
//	benchdiff -base base/BENCH_sim.json -head BENCH_sim.json \
//	    [-threshold 0.10] [-filter 'BenchmarkCollect/']
//
// Benchmarks present only in the head are reported informationally — new
// coverage needs no lockstep change on the base branch. Benchmarks present
// in the base but missing from the head FAIL the diff: a benchmark that
// silently disappears is how a perf gate stops gating (a rename looks like
// a removal plus an addition, so renames must land the new name before
// retiring the old one, or adjust -filter). Stdlib only, matching the
// repo's no-dependency rule.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
)

// Result and Record mirror cmd/benchjson's JSON schema (the two commands
// are separate mains, so the types are duplicated rather than imported).
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

type Record struct {
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Meta is the collection-environment provenance benchjson embeds.
	// Comparison reads only Results: two records that differ solely in
	// metadata (toolchain, commit, GOMAXPROCS) diff as identical.
	Meta    Meta     `json:"meta"`
	Results []Result `json:"results"`
}

// Meta mirrors cmd/benchjson's provenance block.
type Meta struct {
	GoVersion  string `json:"go_version,omitempty"`
	Goos       string `json:"goos,omitempty"`
	Goarch     string `json:"goarch,omitempty"`
	GoMaxProcs int    `json:"gomaxprocs,omitempty"`
	Commit     string `json:"commit,omitempty"`
}

// Delta is one compared benchmark.
type Delta struct {
	Name       string
	Base, Head Result
	// NsRatio and AllocRatio are head/base; 1 means unchanged. AllocRatio
	// is 1 when the base measured zero allocations and the head does too.
	NsRatio    float64
	AllocRatio float64
	// Regressed marks a ratio above the threshold.
	Regressed bool
}

func loadRecord(path string) (Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Record{}, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return Record{}, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}

// index keys results by name; a repeated name keeps the last measurement,
// matching `go test -count` output order.
func index(rec Record) map[string]Result {
	m := make(map[string]Result, len(rec.Results))
	for _, r := range rec.Results {
		m[r.Name] = r
	}
	return m
}

// ratio returns head/base, treating a zero base as "no regression
// detectable" (ratio 1) unless the head is non-zero, which reads as an
// introduction and compares against the smallest measurable base.
func ratio(base, head float64) float64 {
	if base <= 0 {
		if head <= 0 {
			return 1
		}
		return head // vs an implicit base of 1 unit
	}
	return head / base
}

// compare matches the two records and flags regressions beyond threshold.
// Only names matching filter (nil = all) participate.
func compare(base, head Record, threshold float64, filter *regexp.Regexp) (deltas []Delta, onlyBase, onlyHead []string) {
	b, h := index(base), index(head)
	for name, hr := range h {
		if filter != nil && !filter.MatchString(name) {
			continue
		}
		br, ok := b[name]
		if !ok {
			onlyHead = append(onlyHead, name)
			continue
		}
		d := Delta{
			Name:       name,
			Base:       br,
			Head:       hr,
			NsRatio:    ratio(br.NsPerOp, hr.NsPerOp),
			AllocRatio: ratio(float64(br.AllocsPerOp), float64(hr.AllocsPerOp)),
		}
		d.Regressed = d.NsRatio > 1+threshold || d.AllocRatio > 1+threshold
		deltas = append(deltas, d)
	}
	for name := range b {
		if filter != nil && !filter.MatchString(name) {
			continue
		}
		if _, ok := h[name]; !ok {
			onlyBase = append(onlyBase, name)
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	sort.Strings(onlyBase)
	sort.Strings(onlyHead)
	return deltas, onlyBase, onlyHead
}

// report renders the comparison and returns the number of failures:
// regressions beyond threshold plus benchmarks the head record dropped.
func report(w io.Writer, deltas []Delta, onlyBase, onlyHead []string, threshold float64) int {
	regressions := 0
	for _, d := range deltas {
		mark := "  "
		if d.Regressed {
			mark = "✗ "
			regressions++
		}
		fmt.Fprintf(w, "%s%-60s ns/op %12.0f -> %12.0f (%+.1f%%)  allocs/op %6d -> %6d (%+.1f%%)\n",
			mark, d.Name,
			d.Base.NsPerOp, d.Head.NsPerOp, 100*(d.NsRatio-1),
			d.Base.AllocsPerOp, d.Head.AllocsPerOp, 100*(d.AllocRatio-1))
	}
	for _, name := range onlyHead {
		fmt.Fprintf(w, "+ %-60s only in head (no base to compare)\n", name)
	}
	for _, name := range onlyBase {
		fmt.Fprintf(w, "✗ %-60s in base but missing from head: the gate no longer measures it (restore the benchmark, or land the rename on the base branch first)\n", name)
	}
	switch {
	case regressions > 0 && len(onlyBase) > 0:
		fmt.Fprintf(w, "benchdiff: %d benchmark(s) regressed beyond %.0f%%, %d missing from head\n",
			regressions, 100*threshold, len(onlyBase))
	case regressions > 0:
		fmt.Fprintf(w, "benchdiff: %d benchmark(s) regressed beyond %.0f%%\n", regressions, 100*threshold)
	case len(onlyBase) > 0:
		fmt.Fprintf(w, "benchdiff: %d benchmark(s) missing from head\n", len(onlyBase))
	case len(deltas) > 0:
		fmt.Fprintf(w, "benchdiff: %d benchmark(s) within %.0f%% of base\n", len(deltas), 100*threshold)
	default:
		fmt.Fprintln(w, "benchdiff: no comparable benchmarks")
	}
	return regressions + len(onlyBase)
}

func main() {
	basePath := flag.String("base", "", "baseline benchjson record (required)")
	headPath := flag.String("head", "", "head benchjson record (required)")
	threshold := flag.Float64("threshold", 0.10, "allowed fractional regression of ns/op or allocs/op")
	filterExpr := flag.String("filter", "", "regexp restricting which benchmark names are compared")
	flag.Parse()
	if *basePath == "" || *headPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -base and -head are required")
		os.Exit(2)
	}
	var filter *regexp.Regexp
	if *filterExpr != "" {
		var err error
		if filter, err = regexp.Compile(*filterExpr); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: bad -filter: %v\n", err)
			os.Exit(2)
		}
	}
	base, err := loadRecord(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	head, err := loadRecord(*headPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	deltas, onlyBase, onlyHead := compare(base, head, *threshold, filter)
	if report(os.Stdout, deltas, onlyBase, onlyHead, *threshold) > 0 {
		os.Exit(1)
	}
}
