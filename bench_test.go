package mcdvfs

// Benchmarks regenerating every figure of the paper's evaluation (one
// bench per figure; the paper has no numbered tables), plus ablation
// benches for the design choices called out in DESIGN.md §4.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// The first benchmark to touch a grid pays its collection cost; the shared
// lab caches grids after that, so the numbers measure the analysis and
// rendering work of each figure.

import (
	"context"
	"io"
	"sync"
	"testing"

	"mcdvfs/internal/core"
	"mcdvfs/internal/dram"
	"mcdvfs/internal/freq"
	"mcdvfs/internal/governor"
	"mcdvfs/internal/memctrl"
	"mcdvfs/internal/sim"
	"mcdvfs/internal/workload"
)

var (
	benchLabOnce sync.Once
	benchLab     *Lab
	benchLabErr  error
)

func sharedLab(b *testing.B) *Lab {
	b.Helper()
	benchLabOnce.Do(func() {
		benchLab, benchLabErr = NewLab()
		if benchLabErr != nil {
			return
		}
		// Pre-collect every grid the figures need so per-iteration
		// numbers measure analysis, not collection.
		for _, name := range HeadlineBenchmarks() {
			if _, benchLabErr = benchLab.Grid(name); benchLabErr != nil {
				return
			}
		}
		_, benchLabErr = benchLab.FineGrid("gobmk")
	})
	if benchLabErr != nil {
		b.Fatalf("lab: %v", benchLabErr)
	}
	return benchLab
}

func benchFigure(b *testing.B, id string) {
	lab := sharedLab(b)
	e, err := ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(lab, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig02InefficiencyVsSpeedup(b *testing.B) { benchFigure(b, "fig2") }
func BenchmarkFig03OptimalTrajectory(b *testing.B)     { benchFigure(b, "fig3") }
func BenchmarkFig04ClustersGobmk(b *testing.B)         { benchFigure(b, "fig4") }
func BenchmarkFig05ClustersMilc(b *testing.B)          { benchFigure(b, "fig5") }
func BenchmarkFig06StableRegionsLbm(b *testing.B)      { benchFigure(b, "fig6") }
func BenchmarkFig07StableRegions(b *testing.B)         { benchFigure(b, "fig7") }
func BenchmarkFig08Transitions(b *testing.B)           { benchFigure(b, "fig8") }
func BenchmarkFig09RegionLengths(b *testing.B)         { benchFigure(b, "fig9") }
func BenchmarkFig10TimeVsBudget(b *testing.B)          { benchFigure(b, "fig10") }
func BenchmarkFig11Tradeoffs(b *testing.B)             { benchFigure(b, "fig11") }
func BenchmarkFig12StepSensitivity(b *testing.B)       { benchFigure(b, "fig12") }
func BenchmarkGovernorComparison(b *testing.B)         { benchFigure(b, "governors") }

// Extension experiments (see DESIGN.md and EXPERIMENTS.md).
func BenchmarkExtBaselines(b *testing.B)        { benchFigure(b, "baselines") }
func BenchmarkExtModelComparison(b *testing.B)  { benchFigure(b, "modelcmp") }
func BenchmarkExtCacheSensitivity(b *testing.B) { benchFigure(b, "cachesens") }
func BenchmarkExtLowPower(b *testing.B)         { benchFigure(b, "lowpower") }
func BenchmarkExtImaxSurvey(b *testing.B)       { benchFigure(b, "imax") }
func BenchmarkExtHetero(b *testing.B)           { benchFigure(b, "hetero") }

// BenchmarkGridCollection measures the cost of one full 70-setting sweep,
// the paper's "70 simulations per benchmark" step.
func BenchmarkGridCollection(b *testing.B) {
	sys, err := NewSystem(DefaultSystemConfig())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := CollectOn(sys, "gobmk", CoarseSpace()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollect pits the serial reference against the parallel engine
// on the 496-setting fine sweep — the collection that gates every figure —
// at increasing pool sizes, so the bench record tracks the speedup. All
// variants produce byte-identical grids (see
// internal/trace/collect_parallel_test.go).
func BenchmarkCollect(b *testing.B) {
	sys, err := NewSystem(DefaultSystemConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"fine/serial", 1},
		{"fine/workers=2", 2},
		{"fine/workers=4", 4},
		{"fine/workers=gomaxprocs", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			ctx := context.Background()
			opts := CollectOptions{Workers: bc.workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := CollectOnContext(ctx, sys, "gobmk", FineSpace(), opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCollectReference sweeps the same fine grid through the retained
// scalar reference (per-cell model evaluation, no hoisting, no warm
// starts) — the pre-columnar engine kept as the differential-test oracle.
// The BenchmarkCollect/fine/serial : BenchmarkCollectReference/fine/serial
// ratio is the batch engine's speedup; CI tracks both in BENCH_sim.json.
func BenchmarkCollectReference(b *testing.B) {
	sys, err := sim.New(sim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	specs := workload.MustByName("gobmk").MustRealize()
	b.Run("fine/serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, st := range freq.FineSpace().Settings() {
				if _, err := sys.ReferenceRun(specs, st); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationQueueing quantifies the M/M/1 queueing term against a
// fixed-latency (unloaded) memory model: the extra latency a loaded
// memory-bound phase sees. The metric queue_ns is the per-access queueing
// delay the design choice contributes.
func BenchmarkAblationQueueing(b *testing.B) {
	m := memctrl.MustNew(dram.DefaultDevice())
	load := memctrl.Load{AccessPerNS: 0.02, RowHitRate: 0.6, WriteFrac: 0.3}
	unloaded := memctrl.Load{RowHitRate: 0.6, WriteFrac: 0.3}
	var loadedNS, fixedNS float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		loadedNS, err = m.AvgLatencyNS(400, load)
		if err != nil {
			b.Fatal(err)
		}
		fixedNS, err = m.AvgLatencyNS(400, unloaded)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(loadedNS-fixedNS, "queue_ns")
}

// BenchmarkAblationTieBreak compares the paper's highest-CPU-first
// tie-break against a lowest-energy tie-break inside the 0.5% speedup
// band: the alternative saves a little energy but changes the chosen
// trajectory. Metrics report transitions under each rule.
func BenchmarkAblationTieBreak(b *testing.B) {
	lab := sharedLab(b)
	a, err := lab.Analysis("gobmk")
	if err != nil {
		b.Fatal(err)
	}
	const budget = 1.3
	var paperTrans, altTrans int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sch, err := a.OptimalSchedule(budget)
		if err != nil {
			b.Fatal(err)
		}
		paperTrans = sch.Transitions()

		alt := make(core.Schedule, a.NumSamples())
		for s := range alt {
			ids, err := a.WithinBudget(s, budget)
			if err != nil {
				b.Fatal(err)
			}
			best := 0.0
			for _, k := range ids {
				if sp := a.Speedup(s, k); sp > best {
					best = sp
				}
			}
			chosen := freq.SettingID(-1)
			minE := 0.0
			for _, k := range ids {
				if a.Speedup(s, k) < best*(1-core.SpeedupTieBand) {
					continue
				}
				e := a.Grid().At(s, k).EnergyJ()
				if chosen < 0 || e < minE {
					chosen, minE = k, e
				}
			}
			alt[s] = chosen
		}
		altTrans = alt.Transitions()
	}
	b.ReportMetric(float64(paperTrans), "paper_transitions")
	b.ReportMetric(float64(altTrans), "minenergy_transitions")
}

// BenchmarkAblationSearchStart compares the CoScale-style restart-from-max
// search against the paper's start-from-previous proposal: settings
// evaluated per tune.
func BenchmarkAblationSearchStart(b *testing.B) {
	sys, err := sim.New(sim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	specs := workload.MustByName("gobmk").MustRealize()
	model, err := governor.NewSimModel()
	if err != nil {
		b.Fatal(err)
	}
	run := func(search governor.SearchStart) float64 {
		gov, err := governor.NewBudget(governor.BudgetConfig{
			Budget: 1.3, Threshold: 0.03, Space: freq.CoarseSpace(),
			Model: model, Search: search,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := governor.Run(sys, specs, gov, governor.DefaultOverhead())
		if err != nil {
			b.Fatal(err)
		}
		return res.AvgSearchedPerTune()
	}
	var fromMax, fromPrev float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fromMax = run(governor.FromMax)
		fromPrev = run(governor.FromPrevious)
	}
	b.ReportMetric(fromMax, "frommax_settings/tune")
	b.ReportMetric(fromPrev, "fromprev_settings/tune")
}

// BenchmarkAblationMLP quantifies the memory-level-parallelism overlap
// factor: the execution-time ratio of a memory-bound sample with MLP 1
// (every miss fully exposed) vs MLP 4 (deep overlap).
func BenchmarkAblationMLP(b *testing.B) {
	sys, err := sim.New(sim.NoiselessConfig())
	if err != nil {
		b.Fatal(err)
	}
	spec := workload.SampleSpec{
		Instructions: workload.SampleLen,
		BaseCPI:      0.8, MPKI: 25, RowHitRate: 0.85, MLP: 1, WriteFrac: 0.4,
	}
	st := freq.Setting{CPU: 1000, Mem: 400}
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec.MLP = 1
		serial, err := sys.SimulateSample(spec, st)
		if err != nil {
			b.Fatal(err)
		}
		spec.MLP = 4
		overlapped, err := sys.SimulateSample(spec, st)
		if err != nil {
			b.Fatal(err)
		}
		ratio = serial.TimeNS / overlapped.TimeNS
	}
	b.ReportMetric(ratio, "mlp1_vs_mlp4_time_ratio")
}

// BenchmarkAblationScheduler quantifies FR-FCFS reordering against FCFS on
// a row-interleaved burst: the latency the open-page scheduler recovers.
func BenchmarkAblationScheduler(b *testing.B) {
	dev := dram.DefaultDevice()
	stream := func() []dram.Request {
		var reqs []dram.Request
		for i := 0; i < 64; i++ {
			reqs = append(reqs, dram.Request{ArrivalNS: float64(i), Bank: 0, Row: 1 + i%2})
		}
		return reqs
	}
	run := func(policy dram.SchedulerPolicy) float64 {
		s, err := dram.NewScheduledEngine(dev, 800, policy, 16)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Enqueue(stream()...); err != nil {
			b.Fatal(err)
		}
		st, err := s.Drain()
		if err != nil {
			b.Fatal(err)
		}
		return st.AvgLatencyNS()
	}
	var fcfs, frfcfs float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fcfs = run(dram.FCFS)
		frfcfs = run(dram.FRFCFS)
	}
	b.ReportMetric(fcfs, "fcfs_avg_ns")
	b.ReportMetric(frfcfs, "frfcfs_avg_ns")
}

// BenchmarkSimulateSample measures the simulator's per-sample cost, the
// unit of all grid collection.
func BenchmarkSimulateSample(b *testing.B) {
	sys, err := sim.New(sim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	spec := workload.MustByName("gobmk").MustRealize()[0]
	st := freq.Setting{CPU: 700, Mem: 500}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.SimulateSample(spec, st); err != nil {
			b.Fatal(err)
		}
	}
}
