# Verification tiers. `make verify` is the tier-1 gate every change must
# pass; `make race` adds vet plus the full suite under the race detector,
# which exercises the parallel collection engine and the Lab's sharded
# singleflight cache under real contention.

GO ?= go

.PHONY: verify race bench all

all: verify

verify:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) vet ./... && $(GO) test -race ./...

# Collection-engine speedup record: serial vs parallel fine-space sweeps.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkCollect' -benchmem .
