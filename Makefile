# Verification tiers. `make verify` is the tier-1 gate every change must
# pass: build, the full test suite, and the domain-invariant lint tier.
# `make race` adds vet plus the full suite under the race detector, which
# exercises the parallel collection engine and the Lab's sharded
# singleflight cache under real contention. `make lint` runs cmd/mcdvfsvet,
# the stdlib-only analyzer suite enforcing determinism, unit safety, float
# equality, context discipline, and lock hygiene (see DESIGN.md §7).

GO ?= go

.PHONY: verify race lint bench bench-vet bench-sim bench-serve loadtest loadtest-cluster fuzz all

# Benchmark iteration budget for the recorded tiers (bench-sim,
# bench-serve). Counted iterations keep the records comparable across
# machines of different speeds; raise locally for tighter numbers.
BENCHTIME ?= 5x

all: verify

verify: lint
	$(GO) build ./... && $(GO) test ./...

lint:
	$(GO) run ./cmd/mcdvfsvet ./...

race:
	$(GO) vet ./... && $(GO) test -race ./...

# Daemon smoke tier: the in-process load harness (8 zipfian clients, 5s)
# against mcdvfsd's full stack — zero 5xx, coalescing absorbing grid
# demand, cached /v1/optimal p99 under 10ms (see DESIGN.md §8).
loadtest:
	$(GO) test ./internal/serve -run TestLoadSmoke -count=1 -v -args -loadsmoke=5s

# Cluster smoke tier: the full internal/cluster suite — 3-node harness,
# 64-client cluster-wide coalescing, warm-replica fallback, two-phase
# drain — under the race detector (see DESIGN.md §9).
loadtest-cluster:
	$(GO) test -race ./internal/cluster -count=1

# Differential-fuzz smoke tier: FUZZTIME of FuzzBatchVsScalar, the
# bit-identity oracle between the columnar batch engine and the retained
# scalar reference, starting from the committed seed corpus
# (internal/sim/testdata/fuzz/FuzzBatchVsScalar). New crashers land in that
# directory; CI uploads them as artifacts so a red run ships its repro.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/sim -run '^$$' -fuzz '^FuzzBatchVsScalar$$' -fuzztime $(FUZZTIME)

# Collection-engine speedup record: serial vs parallel fine-space sweeps.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkCollect' -benchmem .

# Simulator-core benchmark record: the columnar batch engine (serial and
# parallel full-grid collection) against the retained scalar reference,
# plus the per-sample wrapper, captured as BENCH_sim.json. CI diffs this
# record against the base branch and fails >10% regressions of the
# collection hot path (see .github/workflows/ci.yml).
bench-sim:
	$(GO) test -run '^$$' -bench 'BenchmarkCollect|BenchmarkGridCollection|BenchmarkSimulateSample' \
		-benchtime $(BENCHTIME) -benchmem . \
		| $(GO) run ./cmd/benchjson -out BENCH_sim.json

# Daemon benchmark record: memoized /v1/optimal, cached /v1/grid, and
# forced-recollection /v1/grid through mcdvfsd, plus the cluster scaling
# record (BenchmarkClusterGrid at 1/3/5 nodes — aggregate cache capacity
# vs a thrashing single node), captured as BENCH_serve.json.
bench-serve:
	$(GO) test ./internal/serve ./internal/cluster -run '^$$' \
		-bench 'BenchmarkServe|BenchmarkClusterGrid' \
		-benchtime $(BENCHTIME) -benchmem \
		| $(GO) run ./cmd/benchjson -out BENCH_serve.json

# Analyzer benchmark record: the full mcdvfsvet suite (BenchmarkVet) and
# the isolated abstract-interpretation tier (BenchmarkAbsint — rangecheck,
# nilflow, and the purity-summary determinism prep), each serial vs
# parallel, captured as BENCH_vet.json for regression tracking.
bench-vet:
	$(GO) test ./internal/analysis -run '^$$' -bench 'BenchmarkVet|BenchmarkAbsint' -benchmem \
		| $(GO) run ./cmd/benchjson -out BENCH_vet.json
